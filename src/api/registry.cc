#include "dynmis/registry.h"

#include <algorithm>
#include <utility>

#include "src/baselines/dgdis.h"
#include "src/baselines/dyarw.h"
#include "src/baselines/recompute.h"
#include "src/core/k_swap.h"
#include "src/core/one_swap.h"
#include "src/core/two_swap.h"

namespace dynmis {
namespace {

// The built-ins live here (not in per-algorithm static initializers) so that
// linking the library archive always carries them: a registration object in
// an otherwise-unreferenced object file would be dropped by the linker.
// Out-of-tree algorithms in application binaries can rely on
// DYNMIS_REGISTER_MAINTAINER instead.
void RegisterBuiltins(MaintainerRegistry* registry) {
  registry->Register(
      "DyOneSwap",
      [](DynamicGraph* g, const MaintainerConfig& config) {
        return std::make_unique<DyOneSwap>(g, config);
      },
      "paper Algorithm 2: 1-maximal set, O(m) worst-case per cascade");
  registry->Register(
      "DyTwoSwap",
      [](DynamicGraph* g, const MaintainerConfig& config) {
        return std::make_unique<DyTwoSwap>(g, config);
      },
      "paper Algorithm 3: 2-maximal set, the paper's best quality/speed");
  registry->Register(
      "KSwap",
      [](DynamicGraph* g, const MaintainerConfig& config) {
        return std::make_unique<KSwapMaintainer>(g, config.k, config);
      },
      "generic k-maximal framework (Algorithm 1); set MaintainerConfig::k");
  registry->Register(
      "DyARW",
      [](DynamicGraph* g, const MaintainerConfig&) {
        return std::make_unique<DyArw>(g);
      },
      "dynamic ARW local search baseline (sorted adjacency)");
  registry->Register(
      "DGOneDIS",
      [](DynamicGraph* g, const MaintainerConfig&) {
        return std::make_unique<DgDis>(g, 1);
      },
      "Zheng et al. ICDE'19 degree-one index baseline");
  registry->Register(
      "DGTwoDIS",
      [](DynamicGraph* g, const MaintainerConfig&) {
        return std::make_unique<DgDis>(g, 2);
      },
      "Zheng et al. ICDE'19 degree-two index baseline");
  registry->Register(
      "Recompute",
      [](DynamicGraph* g, const MaintainerConfig& config) {
        return std::make_unique<RecomputeGreedy>(g, config.recompute_every);
      },
      "recompute-from-scratch strawman; MaintainerConfig::recompute_every "
      "amortizes");

  // Paper table spellings for the optimization variants.
  registry->RegisterAlias(
      "DyOneSwap*", "DyOneSwap",
      [](MaintainerConfig* config) { config->perturb = true; },
      "DyOneSwap with perturbation (gap* columns)");
  registry->RegisterAlias(
      "DyTwoSwap*", "DyTwoSwap",
      [](MaintainerConfig* config) { config->perturb = true; },
      "DyTwoSwap with perturbation (gap* columns)");
  registry->RegisterAlias(
      "DyOneSwap-lazy", "DyOneSwap",
      [](MaintainerConfig* config) { config->lazy = true; },
      "DyOneSwap with lazy collection (Fig 7 ablation)");
  registry->RegisterAlias(
      "DyTwoSwap-lazy", "DyTwoSwap",
      [](MaintainerConfig* config) { config->lazy = true; },
      "DyTwoSwap with lazy collection (Fig 7 ablation)");
  for (int k = 1; k <= 4; ++k) {
    registry->RegisterAlias(
        "KSwap" + std::to_string(k), "KSwap",
        [k](MaintainerConfig* config) { config->k = k; },
        "KSwap with k = " + std::to_string(k) + " (Fig 9 series)");
  }
}

}  // namespace

MaintainerRegistry& MaintainerRegistry::Global() {
  static MaintainerRegistry* registry = [] {
    auto* r = new MaintainerRegistry();
    RegisterBuiltins(r);
    return r;
  }();
  return *registry;
}

bool MaintainerRegistry::Register(const std::string& name, Factory factory,
                                  const std::string& description) {
  if (name.empty() || factory == nullptr) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (aliases_.count(name) != 0) return false;
  return algorithms_
      .emplace(name, AlgorithmEntry{std::move(factory), description})
      .second;
}

bool MaintainerRegistry::RegisterAlias(const std::string& alias,
                                       const std::string& canonical,
                                       ConfigPatch patch,
                                       const std::string& description) {
  if (alias.empty()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  if (algorithms_.count(alias) != 0 || algorithms_.count(canonical) == 0) {
    return false;
  }
  return aliases_
      .emplace(alias, AliasEntry{canonical, std::move(patch), description})
      .second;
}

std::unique_ptr<DynamicMisMaintainer> MaintainerRegistry::Create(
    const MaintainerConfig& config, DynamicGraph* g) const {
  // User-supplied callbacks (patch, factory) run outside the lock so they
  // may re-enter the registry without deadlocking.
  MaintainerConfig resolved = config;
  ConfigPatch patch;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto alias = aliases_.find(resolved.algorithm);
    if (alias != aliases_.end()) {
      patch = alias->second.patch;
      resolved.algorithm = alias->second.canonical;
    }
  }
  if (patch) patch(&resolved);
  Factory factory;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = algorithms_.find(resolved.algorithm);
    if (it == algorithms_.end()) return nullptr;
    factory = it->second.factory;
  }
  return factory(g, resolved);
}

bool MaintainerRegistry::Has(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return algorithms_.count(name) != 0 || aliases_.count(name) != 0;
}

std::vector<std::string> MaintainerRegistry::ListAlgorithms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(algorithms_.size());
  for (const auto& [name, entry] : algorithms_) names.push_back(name);
  return names;  // std::map iteration is already sorted.
}

std::vector<std::string> MaintainerRegistry::ListNames() const {
  std::vector<std::string> names = ListAlgorithms();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto& [name, entry] : aliases_) names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::string MaintainerRegistry::Describe(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = algorithms_.find(name);
  if (it != algorithms_.end()) return it->second.description;
  auto alias = aliases_.find(name);
  if (alias != aliases_.end()) {
    return alias->second.description.empty()
               ? "alias for " + alias->second.canonical
               : alias->second.description;
  }
  return "";
}

namespace internal {

MaintainerRegistration::MaintainerRegistration(
    const char* name, MaintainerRegistry::Factory factory,
    const char* description) {
  MaintainerRegistry::Global().Register(name, std::move(factory), description);
}

}  // namespace internal
}  // namespace dynmis
