#include "src/serve/binary.h"

#include <cstdint>
#include <cstring>

namespace dynmis {
namespace serve {
namespace {

uint32_t ReadU32(const char* p) {
  const unsigned char* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

}  // namespace

void AppendU32(std::string* out, uint32_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

void AppendFrameHeader(std::string* out, uint8_t code, size_t body_bytes) {
  AppendU32(out, static_cast<uint32_t>(body_bytes + 1));
  out->push_back(static_cast<char>(code));
}

void AppendInsFrame(std::string* out, VertexId u, VertexId v) {
  AppendFrameHeader(out, kBinOpIns, 8);
  AppendU32(out, static_cast<uint32_t>(u));
  AppendU32(out, static_cast<uint32_t>(v));
}

void AppendDelFrame(std::string* out, VertexId u, VertexId v) {
  AppendFrameHeader(out, kBinOpDel, 8);
  AppendU32(out, static_cast<uint32_t>(u));
  AppendU32(out, static_cast<uint32_t>(v));
}

void AppendInsVFrame(std::string* out, const std::vector<VertexId>& neighbors) {
  AppendFrameHeader(out, kBinOpInsV, 4 + 4 * neighbors.size());
  AppendU32(out, static_cast<uint32_t>(neighbors.size()));
  for (const VertexId n : neighbors) AppendU32(out, static_cast<uint32_t>(n));
}

void AppendDelVFrame(std::string* out, VertexId u) {
  AppendFrameHeader(out, kBinOpDelV, 4);
  AppendU32(out, static_cast<uint32_t>(u));
}

void AppendQueryFrame(std::string* out, VertexId u) {
  AppendFrameHeader(out, kBinOpQuery, 4);
  AppendU32(out, static_cast<uint32_t>(u));
}

void AppendKInsFrame(std::string* out, std::string_view key,
                     const std::vector<VertexId>& neighbors) {
  AppendFrameHeader(out, kBinOpKIns, 8 + key.size() + 4 * neighbors.size());
  AppendU32(out, static_cast<uint32_t>(key.size()));
  out->append(key.data(), key.size());
  AppendU32(out, static_cast<uint32_t>(neighbors.size()));
  for (const VertexId n : neighbors) AppendU32(out, static_cast<uint32_t>(n));
}

void AppendKDelFrame(std::string* out, std::string_view key) {
  AppendFrameHeader(out, kBinOpKDel, 4 + key.size());
  AppendU32(out, static_cast<uint32_t>(key.size()));
  out->append(key.data(), key.size());
}

void AppendKQueryFrame(std::string* out, std::string_view key) {
  AppendFrameHeader(out, kBinOpKQuery, 4 + key.size());
  AppendU32(out, static_cast<uint32_t>(key.size()));
  out->append(key.data(), key.size());
}

namespace {

void AppendNestedOp(std::string* out, const GraphUpdate& update) {
  switch (update.kind) {
    case UpdateKind::kInsertEdge:
      out->push_back(static_cast<char>(kBinOpIns));
      AppendU32(out, static_cast<uint32_t>(update.u));
      AppendU32(out, static_cast<uint32_t>(update.v));
      return;
    case UpdateKind::kDeleteEdge:
      out->push_back(static_cast<char>(kBinOpDel));
      AppendU32(out, static_cast<uint32_t>(update.u));
      AppendU32(out, static_cast<uint32_t>(update.v));
      return;
    case UpdateKind::kInsertVertex:
      if (!update.key.empty()) {
        out->push_back(static_cast<char>(kBinOpKIns));
        AppendU32(out, static_cast<uint32_t>(update.key.size()));
        out->append(update.key);
        AppendU32(out, static_cast<uint32_t>(update.neighbors.size()));
        for (const VertexId n : update.neighbors) {
          AppendU32(out, static_cast<uint32_t>(n));
        }
        return;
      }
      out->push_back(static_cast<char>(kBinOpInsV));
      AppendU32(out, static_cast<uint32_t>(update.neighbors.size()));
      for (const VertexId n : update.neighbors) {
        AppendU32(out, static_cast<uint32_t>(n));
      }
      return;
    case UpdateKind::kDeleteVertex:
      if (!update.key.empty()) {
        out->push_back(static_cast<char>(kBinOpKDel));
        AppendU32(out, static_cast<uint32_t>(update.key.size()));
        out->append(update.key);
        return;
      }
      out->push_back(static_cast<char>(kBinOpDelV));
      AppendU32(out, static_cast<uint32_t>(update.u));
      return;
  }
}

size_t NestedOpBytes(const GraphUpdate& update) {
  switch (update.kind) {
    case UpdateKind::kInsertEdge:
    case UpdateKind::kDeleteEdge:
      return 9;
    case UpdateKind::kInsertVertex:
      if (!update.key.empty()) {
        return 9 + update.key.size() + 4 * update.neighbors.size();
      }
      return 5 + 4 * update.neighbors.size();
    case UpdateKind::kDeleteVertex:
      if (!update.key.empty()) return 5 + update.key.size();
      return 5;
  }
  return 0;
}

}  // namespace

void AppendBatchFrame(std::string* out, const std::vector<GraphUpdate>& updates,
                      size_t first, size_t count) {
  size_t body = 4;
  for (size_t i = 0; i < count; ++i) body += NestedOpBytes(updates[first + i]);
  AppendFrameHeader(out, kBinOpBatch, body);
  AppendU32(out, static_cast<uint32_t>(count));
  for (size_t i = 0; i < count; ++i) AppendNestedOp(out, updates[first + i]);
}

void AppendUpdateFrame(std::string* out, const GraphUpdate& update) {
  switch (update.kind) {
    case UpdateKind::kInsertEdge:
      AppendInsFrame(out, update.u, update.v);
      return;
    case UpdateKind::kDeleteEdge:
      AppendDelFrame(out, update.u, update.v);
      return;
    case UpdateKind::kInsertVertex:
      if (!update.key.empty()) {
        AppendKInsFrame(out, update.key, update.neighbors);
        return;
      }
      AppendInsVFrame(out, update.neighbors);
      return;
    case UpdateKind::kDeleteVertex:
      if (!update.key.empty()) {
        AppendKDelFrame(out, update.key);
        return;
      }
      AppendDelVFrame(out, update.u);
      return;
  }
}

void AppendOkResponse(std::string* out) {
  AppendFrameHeader(out, kBinRespOk, 0);
}

void AppendOkIdResponse(std::string* out, VertexId id) {
  AppendFrameHeader(out, kBinRespOkId, 4);
  AppendU32(out, static_cast<uint32_t>(id));
}

void AppendRejectResponse(std::string* out, std::string_view reason) {
  AppendFrameHeader(out, kBinRespReject, reason.size());
  out->append(reason.data(), reason.size());
}

void AppendBatchAckResponse(std::string* out, int64_t applied, int64_t rejected,
                            const std::vector<VertexId>& insert_ids) {
  AppendFrameHeader(out, kBinRespBatch, 12 + 4 * insert_ids.size());
  AppendU32(out, static_cast<uint32_t>(applied));
  AppendU32(out, static_cast<uint32_t>(rejected));
  AppendU32(out, static_cast<uint32_t>(insert_ids.size()));
  for (const VertexId id : insert_ids) AppendU32(out, static_cast<uint32_t>(id));
}

void AppendQueryResponse(std::string* out, bool in_solution) {
  AppendFrameHeader(out, kBinRespQuery, 1);
  out->push_back(in_solution ? 1 : 0);
}

void AppendKQueryResponse(std::string* out, VertexId id, bool in_solution) {
  AppendFrameHeader(out, kBinRespKQuery, 5);
  AppendU32(out, static_cast<uint32_t>(id));
  out->push_back(in_solution ? 1 : 0);
}

void AppendErrResponse(std::string* out, std::string_view message) {
  AppendFrameHeader(out, kBinRespErr, message.size());
  out->append(message.data(), message.size());
}

// --- BinaryFrameBuffer --------------------------------------------------------

void BinaryFrameBuffer::Append(const char* data, size_t n) {
  if (overflowed_) return;
  buffer_.append(data, n);
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

std::optional<std::string_view> BinaryFrameBuffer::NextFrame() {
  if (overflowed_) return std::nullopt;
  if (buffer_.size() - consumed_ < 4) return std::nullopt;
  const uint32_t len = ReadU32(buffer_.data() + consumed_);
  if (len == 0 || len > max_frame_bytes_) {
    overflowed_ = true;
    return std::nullopt;
  }
  if (buffer_.size() - consumed_ < 4 + static_cast<size_t>(len)) {
    return std::nullopt;
  }
  const std::string_view payload(buffer_.data() + consumed_ + 4, len);
  consumed_ += 4 + static_cast<size_t>(len);
  return payload;
}

// --- RequestFrameDecoder ------------------------------------------------------

bool RequestFrameDecoder::TakeU32(uint32_t* v) {
  if (body_.size() - pos_ < 4) return false;
  *v = ReadU32(body_.data() + pos_);
  pos_ += 4;
  return true;
}

bool RequestFrameDecoder::TakeVertex(VertexId* v, std::string* error,
                                     const char* what) {
  uint32_t raw = 0;
  if (!TakeU32(&raw) || raw > static_cast<uint32_t>(INT32_MAX)) {
    *error = std::string("bad ") + what + ": expected a vertex id";
    return false;
  }
  *v = static_cast<VertexId>(raw);
  return true;
}

bool RequestFrameDecoder::TakeKey(std::string* key, std::string* error) {
  uint32_t len = 0;
  if (!TakeU32(&len) || static_cast<size_t>(len) > body_.size() - pos_) {
    *error = "bad key length";
    return false;
  }
  const std::string_view raw = body_.substr(pos_, len);
  if (!IsValidKey(raw)) {
    *error = "bad key: expected 1..256 printable non-whitespace ASCII bytes";
    return false;
  }
  key->assign(raw.data(), raw.size());
  pos_ += len;
  return true;
}

bool RequestFrameDecoder::Begin(std::string_view payload, std::string* error) {
  body_ = payload.substr(1);
  pos_ = 0;
  code_ = static_cast<uint8_t>(payload[0]);
  batch_left_ = 0;
  switch (code_) {
    case kBinOpIns:
    case kBinOpDel:
    case kBinOpInsV:
    case kBinOpDelV:
    case kBinOpQuery:
    case kBinOpKIns:
    case kBinOpKDel:
    case kBinOpKQuery:
      state_ = State::kSingle;
      return true;
    case kBinOpBatch:
      state_ = State::kBatchHeader;
      return true;
    default:
      state_ = State::kDone;
      *error = "unknown opcode " + std::to_string(code_);
      return false;
  }
}

bool RequestFrameDecoder::DecodeOp(uint8_t code, Command* cmd,
                                   std::string* error) {
  *cmd = Command();
  switch (code) {
    case kBinOpIns:
    case kBinOpDel:
      cmd->verb = code == kBinOpIns ? Verb::kIns : Verb::kDel;
      cmd->update.kind = code == kBinOpIns ? UpdateKind::kInsertEdge
                                          : UpdateKind::kDeleteEdge;
      return TakeVertex(&cmd->update.u, error, "endpoint") &&
             TakeVertex(&cmd->update.v, error, "endpoint");
    case kBinOpInsV: {
      cmd->verb = Verb::kInsV;
      cmd->update.kind = UpdateKind::kInsertVertex;
      uint32_t n = 0;
      if (!TakeU32(&n) || static_cast<size_t>(n) > (body_.size() - pos_) / 4) {
        *error = "INSV: bad neighbor count";
        return false;
      }
      cmd->update.neighbors.clear();
      cmd->update.neighbors.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        VertexId v = kInvalidVertex;
        if (!TakeVertex(&v, error, "neighbor")) return false;
        cmd->update.neighbors.push_back(v);
      }
      return true;
    }
    case kBinOpDelV:
      cmd->verb = Verb::kDelV;
      cmd->update.kind = UpdateKind::kDeleteVertex;
      return TakeVertex(&cmd->update.u, error, "vertex");
    case kBinOpQuery:
      cmd->verb = Verb::kQuery;
      return TakeVertex(&cmd->vertex, error, "vertex");
    case kBinOpKIns: {
      cmd->verb = Verb::kKIns;
      cmd->update.kind = UpdateKind::kInsertVertex;
      if (!TakeKey(&cmd->update.key, error)) return false;
      uint32_t n = 0;
      if (!TakeU32(&n) || static_cast<size_t>(n) > (body_.size() - pos_) / 4) {
        *error = "KINS: bad neighbor count";
        return false;
      }
      cmd->update.neighbors.clear();
      cmd->update.neighbors.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        VertexId v = kInvalidVertex;
        if (!TakeVertex(&v, error, "neighbor")) return false;
        cmd->update.neighbors.push_back(v);
      }
      return true;
    }
    case kBinOpKDel:
      cmd->verb = Verb::kKDel;
      cmd->update.kind = UpdateKind::kDeleteVertex;
      return TakeKey(&cmd->update.key, error);
    case kBinOpKQuery:
      cmd->verb = Verb::kKQuery;
      return TakeKey(&cmd->update.key, error);
    default:
      *error = "bad nested opcode " + std::to_string(code);
      return false;
  }
}

RequestFrameDecoder::Step RequestFrameDecoder::Next(Command* cmd,
                                                    std::string* error) {
  switch (state_) {
    case State::kSingle:
      if (!DecodeOp(code_, cmd, error)) {
        state_ = State::kDone;
        return Step::kError;
      }
      if (pos_ != body_.size()) {
        *error = "trailing bytes in frame";
        state_ = State::kDone;
        return Step::kError;
      }
      state_ = State::kDone;
      return Step::kCommand;
    case State::kBatchHeader: {
      uint32_t count = 0;
      if (!TakeU32(&count) || count == 0 ||
          static_cast<int64_t>(count) > kBinMaxBatchOps) {
        *error = "BATCH: bad op count";
        state_ = State::kDone;
        return Step::kError;
      }
      batch_left_ = count;
      *cmd = Command();
      cmd->verb = Verb::kBatch;
      cmd->count = static_cast<int>(count);
      state_ = State::kBatchOps;
      return Step::kCommand;
    }
    case State::kBatchOps: {
      if (pos_ >= body_.size()) {
        *error = "BATCH: truncated ops";
        state_ = State::kDone;
        return Step::kError;
      }
      const uint8_t op = static_cast<uint8_t>(body_[pos_++]);
      if (op == kBinOpBatch || op == kBinOpQuery || op == kBinOpKQuery) {
        *error = "BATCH: nested op must be an update";
        state_ = State::kDone;
        return Step::kError;
      }
      if (!DecodeOp(op, cmd, error)) {
        state_ = State::kDone;
        return Step::kError;
      }
      if (--batch_left_ == 0) state_ = State::kBatchEnd;
      return Step::kCommand;
    }
    case State::kBatchEnd:
      if (pos_ != body_.size()) {
        *error = "trailing bytes in frame";
        state_ = State::kDone;
        return Step::kError;
      }
      *cmd = Command();
      cmd->verb = Verb::kEnd;
      state_ = State::kDone;
      return Step::kCommand;
    case State::kDone:
      return Step::kDone;
  }
  return Step::kDone;
}

// --- Response decoding --------------------------------------------------------

bool DecodeResponseFrame(std::string_view payload, BinaryResponse* out,
                         std::string* error) {
  *out = BinaryResponse();
  if (payload.empty()) {
    *error = "empty response frame";
    return false;
  }
  out->code = static_cast<uint8_t>(payload[0]);
  const std::string_view body = payload.substr(1);
  switch (out->code) {
    case kBinRespOk:
      if (!body.empty()) break;
      return true;
    case kBinRespOkId:
      if (body.size() != 4) break;
      out->id = static_cast<VertexId>(ReadU32(body.data()));
      return true;
    case kBinRespReject:
    case kBinRespErr:
      out->message.assign(body.data(), body.size());
      return true;
    case kBinRespBatch: {
      if (body.size() < 12) break;
      out->applied = ReadU32(body.data());
      out->rejected = ReadU32(body.data() + 4);
      const uint32_t n = ReadU32(body.data() + 8);
      if (body.size() != 12 + 4 * static_cast<size_t>(n)) break;
      out->insert_ids.reserve(n);
      for (uint32_t i = 0; i < n; ++i) {
        out->insert_ids.push_back(
            static_cast<VertexId>(ReadU32(body.data() + 12 + 4 * i)));
      }
      return true;
    }
    case kBinRespQuery:
      if (body.size() != 1) break;
      out->in_solution = body[0] != 0;
      return true;
    case kBinRespKQuery:
      if (body.size() != 5) break;
      out->id = static_cast<VertexId>(ReadU32(body.data()));
      out->in_solution = body[4] != 0;
      return true;
    default:
      *error = "unknown response code " + std::to_string(out->code);
      return false;
  }
  *error = "malformed response body for code " + std::to_string(out->code);
  return false;
}

}  // namespace serve
}  // namespace dynmis
