// Shared solution verification for the serving path: one O(n + m)
// independence + maximality check over a DynamicGraph, used by the
// server's VERIFY command and by dynmis_loadgen's client-side re-check —
// both sides of the socket must be verifying the same property with the
// same code. (tests/verifiers.h keeps its deliberately naive O(k^2)
// brute-force variants: the test oracle should not share code with the
// thing it checks.)

#ifndef DYNMIS_SRC_SERVE_VERIFY_H_
#define DYNMIS_SRC_SERVE_VERIFY_H_

#include <cstdint>
#include <vector>

#include "src/graph/dynamic_graph.h"

namespace dynmis {
namespace serve {

// Sets *independent (every member alive and distinct, no edge inside the
// set) and *maximal (additionally, every alive non-member has a member
// neighbor; only meaningful when independent). Returns both.
inline bool CheckSolution(const DynamicGraph& g,
                          const std::vector<VertexId>& solution,
                          bool* independent, bool* maximal) {
  std::vector<uint8_t> member(g.VertexCapacity(), 0);
  *independent = true;
  for (const VertexId v : solution) {
    if (!g.IsVertexAlive(v) || member[v]) *independent = false;
    if (v >= 0 && v < g.VertexCapacity()) member[v] = 1;
  }
  if (*independent) {
    for (const auto& [u, v] : g.EdgeList()) {
      if (member[u] && member[v]) {
        *independent = false;
        break;
      }
    }
  }
  *maximal = *independent;
  if (*maximal) {
    for (VertexId v = 0; v < g.VertexCapacity(); ++v) {
      if (!g.IsVertexAlive(v) || member[v]) continue;
      bool covered = false;
      g.ForEachIncident(v, [&](VertexId u, EdgeId) {
        if (member[u]) covered = true;
      });
      if (!covered) {
        *maximal = false;
        break;
      }
    }
  }
  return *independent && *maximal;
}

}  // namespace serve
}  // namespace dynmis

#endif  // DYNMIS_SRC_SERVE_VERIFY_H_
