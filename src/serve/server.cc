// The serving engine thread. It owns the listening socket, the admission
// batch, the backend, and all replication state — but never a client
// socket: connections are handed to ServeOptions::io_threads epoll-driven
// I/O threads (src/serve/io_thread.h) at accept time, and the engine
// exchanges parsed commands / response bytes with them through per-thread
// SPSC mailboxes. The engine's own epoll set watches exactly three fds —
// its wake eventfd, the listener, and the follower upstream — so no part of
// the hot path scans O(connections) descriptors. See include/dynmis/serve.h
// for the architecture overview and README "Serving" for the protocol
// (newline text by default; length-prefixed binary after `HELLO 2 BIN`,
// src/serve/binary.h).

#include "dynmis/serve.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <signal.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <thread>
#include <utility>

#include "dynmis/sharded_engine.h"
#include "src/ingest/temporal.h"
#include "src/io/atomic_file.h"
#include "src/io/snapshot.h"
#include "src/repl/change_log.h"
#include "src/repl/snapshotter.h"
#include "src/serve/binary.h"
#include "src/serve/io_thread.h"
#include "src/serve/mailbox.h"
#include "src/serve/metrics.h"
#include "src/serve/protocol.h"
#include "src/serve/trace.h"
#include "src/serve/verify.h"
#include "src/util/check.h"
#include "src/util/faultfs.h"
#include "src/util/random.h"
#include "src/util/timer.h"

namespace dynmis {
namespace serve {
namespace {

// --- Backend adapters --------------------------------------------------------

class EngineBackend : public ServingBackend {
 public:
  explicit EngineBackend(std::unique_ptr<MisEngine> engine)
      : engine_(std::move(engine)) {}

  std::string Kind() const override { return "engine"; }
  int NumShards() const override { return 1; }
  UpdateResult ApplyBatch(const std::vector<GraphUpdate>& updates) override {
    return engine_->ApplyBatch(updates);
  }
  bool InSolution(VertexId v) override { return engine_->InSolution(v); }
  void CollectSolution(std::vector<VertexId>* out) override {
    engine_->CollectSolution(out);
  }
  EngineStats Stats() override { return engine_->Stats(); }
  SnapshotStatus SaveSnapshot(std::ostream& out) override {
    return engine_->SaveSnapshot(out);
  }
  void SaveTo(SnapshotWriter* writer) override { engine_->SaveTo(writer); }
  DynamicGraph ExportGraph() override { return engine_->graph(); }
  const MaintainerConfig& Config() const override {
    return engine_->config();
  }

 private:
  std::unique_ptr<MisEngine> engine_;
};

class ShardedBackend : public ServingBackend {
 public:
  explicit ShardedBackend(std::unique_ptr<ShardedMisEngine> engine)
      : engine_(std::move(engine)) {}

  std::string Kind() const override { return "sharded"; }
  int NumShards() const override { return engine_->num_shards(); }
  UpdateResult ApplyBatch(const std::vector<GraphUpdate>& updates) override {
    // Route, then barrier: an admission batch is one transaction from the
    // client's point of view, so the ack must mean "applied", not "queued".
    UpdateResult result = engine_->ApplyBatch(updates);
    engine_->Flush();
    return result;
  }
  bool InSolution(VertexId v) override { return engine_->InSolution(v); }
  void CollectSolution(std::vector<VertexId>* out) override {
    engine_->CollectSolution(out);
  }
  EngineStats Stats() override { return engine_->Stats(); }
  std::vector<EngineStats> PerShardStats() override {
    return engine_->PerShardStats();
  }
  ShardedMisEngine* Sharded() override { return engine_.get(); }
  SnapshotStatus SaveSnapshot(std::ostream& out) override {
    return engine_->SaveSnapshot(out);
  }
  void SaveTo(SnapshotWriter* writer) override { engine_->SaveTo(writer); }
  DynamicGraph ExportGraph() override { return engine_->BuildGlobalGraph(); }
  const MaintainerConfig& Config() const override {
    return engine_->config();
  }

 private:
  std::unique_ptr<ShardedMisEngine> engine_;
};

// --- JSON assembly -----------------------------------------------------------

// STATS emits one line of JSON. Keys and string values are all
// server-controlled identifiers (no client bytes), so escaping reduces to
// quoting.

void JsonKey(std::string* out, const char* key) {
  if (out->back() != '{' && out->back() != '[') out->push_back(',');
  out->push_back('"');
  out->append(key);
  out->append("\":");
}

void JsonStr(std::string* out, const char* key, const std::string& value) {
  JsonKey(out, key);
  out->push_back('"');
  out->append(value);
  out->push_back('"');
}

void JsonInt(std::string* out, const char* key, int64_t value) {
  JsonKey(out, key);
  out->append(std::to_string(value));
}

void JsonDouble(std::string* out, const char* key, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  JsonKey(out, key);
  out->append(buf);
}

void JsonEngineStats(std::string* out, const EngineStats& stats) {
  out->push_back('{');
  JsonStr(out, "algorithm", stats.algorithm);
  JsonInt(out, "solution_size", stats.solution_size);
  JsonInt(out, "num_vertices", stats.num_vertices);
  JsonInt(out, "num_edges", stats.num_edges);
  JsonInt(out, "structure_memory_bytes",
          static_cast<int64_t>(stats.structure_memory_bytes));
  JsonInt(out, "graph_memory_bytes",
          static_cast<int64_t>(stats.graph_memory_bytes));
  JsonInt(out, "updates_applied", stats.updates_applied);
  JsonDouble(out, "update_seconds", stats.update_seconds);
  out->push_back('}');
}

bool SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// Tags in the engine thread's (three-entry) epoll set.
constexpr uint64_t kEngineWakeTag = 0;
constexpr uint64_t kEngineListenTag = 1;
constexpr uint64_t kEngineUpstreamTag = 2;

void WriteWakeEventFd(int fd) {
  const uint64_t one = 1;
  (void)!write(fd, &one, sizeof(one));
}

}  // namespace

std::unique_ptr<ServingBackend> MakeServingBackend(const EdgeListGraph& base,
                                                   const ServeOptions& options,
                                                   std::string* error) {
  error->clear();
  const bool sharded = options.backend == "sharded";
  if (!sharded && options.backend != "engine") {
    *error = "unknown backend: " + options.backend +
             " (expected engine or sharded)";
    return nullptr;
  }
  if (!options.restore_path.empty()) {
    std::ifstream in(options.restore_path, std::ios::binary);
    if (!in) {
      *error = "cannot open snapshot: " + options.restore_path;
      return nullptr;
    }
    SnapshotStatus status;
    if (sharded) {
      auto engine = ShardedMisEngine::LoadSnapshot(in, &status);
      if (engine == nullptr) {
        *error = "restore failed: " + status.message;
        return nullptr;
      }
      return std::make_unique<ShardedBackend>(std::move(engine));
    }
    auto engine = MisEngine::LoadSnapshot(in, &status);
    if (engine == nullptr) {
      *error = "restore failed: " + status.message;
      return nullptr;
    }
    return std::make_unique<EngineBackend>(std::move(engine));
  }
  if (sharded) {
    ShardedEngineOptions shard_options;
    shard_options.num_shards = options.shards;
    auto engine = ShardedMisEngine::Create(base, options.algo, shard_options);
    if (engine == nullptr) {
      *error = "unknown algorithm: " + options.algo.algorithm;
      return nullptr;
    }
    engine->Initialize();
    return std::make_unique<ShardedBackend>(std::move(engine));
  }
  auto engine = MisEngine::Create(base, options.algo);
  if (engine == nullptr) {
    *error = "unknown algorithm: " + options.algo.algorithm;
    return nullptr;
  }
  engine->Initialize();
  return std::make_unique<EngineBackend>(std::move(engine));
}

std::unique_ptr<ServingBackend> RestoreServingBackend(
    std::istream& in, std::string* error, ingest::KeyMap* keymap) {
  error->clear();
  // Buffer the container once: the flavour probe and the engine loader each
  // need to read it from the top.
  std::ostringstream buffered;
  buffered << in.rdbuf();
  const std::string bytes = buffered.str();
  SnapshotReader probe;
  {
    std::istringstream stream(bytes);
    const SnapshotStatus status = probe.ReadFrom(stream);
    if (!status.ok) {
      *error = "restore failed: " + status.message;
      return nullptr;
    }
  }
  if (keymap != nullptr) {
    *keymap = ingest::KeyMap();
    if (probe.HasSection("keymap") && !keymap->LoadFrom(&probe)) {
      *error = "restore failed: " + probe.status().message;
      return nullptr;
    }
  }
  SnapshotStatus status;
  std::istringstream stream(bytes);
  if (probe.HasSection("sharded")) {
    auto engine = ShardedMisEngine::LoadSnapshot(stream, &status);
    if (engine == nullptr) {
      *error = "restore failed: " + status.message;
      return nullptr;
    }
    return std::make_unique<ShardedBackend>(std::move(engine));
  }
  auto engine = MisEngine::LoadSnapshot(stream, &status);
  if (engine == nullptr) {
    *error = "restore failed: " + status.message;
    return nullptr;
  }
  return std::make_unique<EngineBackend>(std::move(engine));
}

// --- Server implementation ---------------------------------------------------

struct Server::Impl {
  // One client batch frame (BATCH n ... END): acked as a unit once END has
  // been seen and every admitted op of the frame has applied.
  struct Frame {
    int64_t outstanding = 0;  // Admitted ops not yet applied.
    int64_t applied = 0;
    int64_t rejected = 0;
    std::vector<VertexId> insert_ids;
    bool end_seen = false;
    // A protocol error inside the frame replaced its ack with an error; the
    // frame record stays only to absorb the apply notifications of its
    // already-admitted ops.
    bool aborted = false;
  };

  // An entry of a connection's ordered response stream. `ready` entries
  // drain into the socket buffer; an unready entry (a deferred op or frame
  // ack) blocks the entries behind it until the flush fills it in. Fills
  // are type-targeted: single-op acks land in op slots (admission order)
  // and frame acks in frame slots (frame order), so a frame that settles
  // early — all its ops rejected, say — can never claim an earlier
  // still-pending single op's slot. Wire order is always slot order either
  // way, because only the ready prefix drains.
  struct Response {
    bool ready = false;
    bool frame_slot = false;
    std::string text;
  };

  // The engine's socket-free view of a client: the fd, the input decoding,
  // and the send buffer all live on the connection's I/O thread. The engine
  // stages response bytes in `staged` and ships them as kAppend orders;
  // `pending_out` (shared with the I/O thread) tracks shipped-but-unsent
  // bytes so write-side backpressure still sees the whole backlog.
  struct Connection {
    int64_t session = 0;
    int io_thread = 0;
    bool binary = false;  // Negotiated with HELLO 2 BIN.
    std::shared_ptr<std::atomic<int64_t>> pending_out =
        std::make_shared<std::atomic<int64_t>>(0);
    std::string staged;  // Response bytes not yet shipped to the I/O thread.
    size_t pending_out_bytes() const {
      return staged.size() +
             static_cast<size_t>(std::max<int64_t>(
                 0, pending_out->load(std::memory_order_relaxed)));
    }
    // Set when the client kept issuing commands while already sitting on
    // max_output_bytes of unread responses; the loop disconnects it. A
    // single response larger than the cap is fine — the check runs before
    // each append, so one big SOLUTION drains normally.
    bool overloaded = false;
    // In dirty_sessions, pending a ShipOutput pass.
    bool dirty = false;
    RingQueue<Response> responses;
    RingQueue<Frame> frames;
    bool handshaken = false;
    // Update lines still expected by an open BATCH frame, then END.
    int frame_updates_left = 0;
    bool awaiting_end = false;
    bool in_frame() const { return frame_updates_left > 0 || awaiting_end; }
    bool close_after_write = false;
    bool close_order_sent = false;
    // Binary BATCH refused as a unit (readonly): the frame's remaining ops
    // and END are consumed silently so the one-response-per-request-frame
    // contract holds.
    int discard_updates_left = 0;
    bool discard_end = false;
    bool discarding() const { return discard_updates_left > 0 || discard_end; }

    // REPL SUBSCRIBE state. A live subscriber gets RBATCH frames pushed as
    // batches apply; a catching-up one is pumped from its change-log cursor
    // until it reaches the head, then goes live.
    bool subscriber = false;
    bool sub_live = false;
    std::unique_ptr<repl::ChangeLogCursor> sub_cursor;
  };

  // One admitted op awaiting the next flush.
  struct PendingMeta {
    int64_t session = 0;
    Verb verb = Verb::kIns;
    double enqueue_time = 0;
    VertexId assigned_id = kInvalidVertex;  // INSV: replica-assigned id.
    bool in_frame = false;
  };

  std::unique_ptr<ServingBackend> backend;
  DynamicGraph replica;
  ServeOptions options;
  ServeMetrics metrics;
  Timer clock;

  // External-key bindings (KINS/KDEL/KQUERY). Mutated eagerly at admission
  // alongside the replica, so every admitted op saw a consistent map.
  ingest::KeyMap keymap;

  // Temporal sliding window (ServeOptions::window_ttl_ms): a wall-clock
  // timing wheel at 1ms/tick over the admitted edge inserts. Null when the
  // window is off.
  std::unique_ptr<ingest::TimingWheel> window_wheel;
  std::vector<std::pair<VertexId, VertexId>> window_scratch;
  int64_t expired_ops = 0;  // TTL deletions applied over the lifetime.

  int listen_fd = -1;
  int bound_port = 0;
  // Engine epoll set (wake eventfd + listener + upstream) and the eventfd
  // that Stop()/signals/I-O threads write to wake the loop.
  int epoll_fd = -1;
  int wake_fd = -1;
  // EMFILE/ENFILE backoff: the listener leaves the epoll set (level-
  // triggered readiness would re-report the backlog forever) and rejoins at
  // the deadline.
  bool listener_muted = false;
  double accept_mute_until = 0;

  // The I/O thread fleet (created at Run(), joined at drain) and the
  // per-thread "orders staged, kick before sleeping" flags.
  std::vector<std::unique_ptr<IoThread>> io_threads;
  // Final per-thread counters, captured when the threads are stopped.
  std::vector<IoMetrics> io_metrics_final;
  std::vector<char> kick_needed;
  int next_io_thread = 0;

  int64_t next_session = 1;
  std::map<int64_t, Connection> connections;  // session -> connection.
  // Connections with staged output / lifecycle transitions since the last
  // ShipOutput pass.
  std::vector<int64_t> dirty_sessions;

  std::vector<GraphUpdate> pending_updates;
  std::vector<PendingMeta> pending_meta;

  // Applied-op log for TRACE (only when options.record_trace), with the
  // flush boundaries a faithful replay needs (src/serve/trace.h).
  ServeTrace trace;

  std::atomic<bool> stopping{false};

  // ---- Replication state ----------------------------------------------------

  // Follower until promoted: update verbs answered with `ERR readonly`.
  bool read_only = false;
  // Batches applied so far == the next change-log sequence number. The
  // whole replication design hangs off this one counter: a batch's seq is
  // its position in the applied-batch stream, identical on every replica.
  int64_t next_seq = 0;
  std::unique_ptr<repl::ChangeLogWriter> log_writer;
  std::unique_ptr<repl::Snapshotter> snapshotter;
  int64_t last_snapshot_trigger_seq = 0;
  double last_snapshot_trigger_time = 0;  // clock seconds at last trigger.
  std::atomic<bool> promote_requested{false};

  // Fencing epoch: the highest writer term this server has observed. A
  // healthy primary's own term lives here (claimed durably in the epoch
  // file before the first write is acked); a follower tracks the upstream's
  // term. Observing a term above our own while writable fences the server:
  // writes answer `ERR fenced <epoch>` and nothing further is appended —
  // acking even one more batch could hand a client a write the new
  // primary's history never saw.
  int64_t epoch = 0;
  bool fenced = false;
  // "<change-log dir>/epoch" when this server writes a log; prebuilt so the
  // per-flush fencing probe stays allocation-free.
  std::string epoch_path;
  double next_epoch_check = 0;  // Clock seconds of the next idle probe.

  // Degraded mode: a change-log append failed (ENOSPC/EIO). The already-
  // applied batch sits in `unlogged_batches` (it cannot be un-applied), new
  // writes answer `ERR readonly`, and every retry tick re-appends the
  // buffer; once a Sync succeeds the server returns to normal service.
  bool degraded = false;
  std::string degraded_reason;
  std::deque<repl::LogBatch> unlogged_batches;
  double next_degraded_retry = 0;

  // Upstream reconnect (--follow): exponential backoff with jitter,
  // resubscribing from next_seq. reconnect_at < 0 means no attempt is due.
  double reconnect_at = -1;
  int reconnect_attempts = 0;
  Rng reconnect_rng{0x9e3779b97f4a7c15ULL};

  // Follower upstream (TCP --follow): a non-blocking socket in the same
  // poll loop. The handshake lines are sent eagerly at Start(); responses
  // are consumed by a tiny state machine.
  enum class UpstreamState { kGreeting, kSubscribeAck, kStreaming, kDown };
  int upstream_fd = -1;
  UpstreamState upstream_state = UpstreamState::kDown;
  std::unique_ptr<LineBuffer> upstream_in;
  int64_t upstream_head = -1;  // Primary's next_seq as last announced.
  // RBATCH frame assembly.
  int64_t rbatch_seq = -1;
  int rbatch_left = 0;
  std::vector<GraphUpdate> rbatch_updates;

  // Follower --follow-dir: tail the primary's change-log directory.
  std::unique_ptr<repl::ChangeLogCursor> tail_cursor;

  // ---- Online resharding ----------------------------------------------------

  // One reshard at a time: a worker thread rebuilds the backend at the
  // target shard count from an admission-time snapshot, replays every batch
  // the loop applied since (fed through `queue`), and the loop swaps
  // backends at a barrier once the worker has caught up.
  struct ReshardTask {
    int target_shards = 0;
    PartitionStrategy partition = PartitionStrategy::kHash;
    int64_t base_seq = 0;
    std::string base_bytes;
    std::thread thread;
    std::mutex mutex;
    std::condition_variable cv;
    std::deque<repl::LogBatch> queue;
    bool finalize = false;
    std::atomic<bool> caught_up{false};  // Worker reached an empty queue.
    std::atomic<bool> failed{false};
    std::unique_ptr<ServingBackend> result;
    std::string error;
  };
  std::unique_ptr<ReshardTask> reshard;

  // ---- Admission ------------------------------------------------------------

  // Resolves a keyed command against the map before graph validation: KINS
  // must introduce a fresh key; KDEL names an existing one (the bound id
  // lands in update.u, turning it into a plain vertex delete downstream).
  bool ResolveKeyed(Command* cmd, std::string* why) {
    if (cmd->verb == Verb::kKIns) {
      if (keymap.Lookup(cmd->update.key) != kInvalidVertex) {
        *why = "key exists";
        return false;
      }
      return true;
    }
    if (cmd->verb == Verb::kKDel) {
      const VertexId id = keymap.Lookup(cmd->update.key);
      if (id == kInvalidVertex) {
        *why = "unknown key";
        return false;
      }
      cmd->update.u = id;
    }
    return true;
  }

  // Mirrors an admitted op's key effect into the map, as eagerly as
  // Validate mutates the replica: bind the fresh vertex's id, release a
  // dying vertex's binding (whether the client named it by key or raw id).
  void CommitKeyed(const GraphUpdate& update, VertexId insv_id) {
    if (update.kind == UpdateKind::kInsertVertex) {
      if (!update.key.empty()) keymap.Bind(update.key, insv_id);
    } else if (update.kind == UpdateKind::kDeleteVertex) {
      if (!update.key.empty()) {
        keymap.Release(update.key);
      } else {
        keymap.ReleaseId(update.u);
      }
    }
  }

  // Schedules an admitted edge insert for TTL expiry when the sliding
  // window is on.
  void MaybeScheduleWindow(const GraphUpdate& update) {
    if (window_wheel != nullptr && update.kind == UpdateKind::kInsertEdge) {
      window_wheel->Schedule(update.u, update.v);
    }
  }

  // Advances the wall-clock wheel to `now` and feeds the expired edges
  // through the same pending batch as client writes (no response slots —
  // Flush acks via pending_meta, which these ops never enter), so expiries
  // apply, replicate, and snapshot exactly like client deletions.
  void AdvanceWindow() {
    if (window_wheel == nullptr || read_only || fenced || degraded) return;
    const uint64_t target =
        static_cast<uint64_t>(clock.ElapsedSeconds() * 1e3);
    // An empty wheel skips its backlog wholesale (a follower's cursor
    // would otherwise spin through every tick of its read-only stretch at
    // promotion).
    if (window_wheel->scheduled() == 0) window_wheel->FastForward(target);
    bool expired_any = false;
    while (window_wheel->now() < target) {
      window_scratch.clear();
      window_wheel->Advance(&window_scratch);
      for (const auto& edge : window_scratch) {
        if (!replica.IsVertexAlive(edge.first) ||
            !replica.IsVertexAlive(edge.second) ||
            !replica.HasEdge(edge.first, edge.second)) {
          continue;  // Gone before its TTL; nothing left to expire.
        }
        replica.RemoveEdgeBetween(edge.first, edge.second);
        GraphUpdate update;
        update.kind = UpdateKind::kDeleteEdge;
        update.u = edge.first;
        update.v = edge.second;
        pending_updates.push_back(std::move(update));
        ++expired_ops;
        expired_any = true;
        if (static_cast<int>(pending_updates.size()) >=
            options.batch_max_ops) {
          Flush(FlushReason::kFull);
          expired_any = false;
        }
      }
    }
    // A pure-expiry batch has no client flush deadline to trip; apply it
    // now so the window lags the clock by at most one loop pass.
    if (expired_any && pending_meta.empty() && !pending_updates.empty()) {
      Flush(FlushReason::kDeadline);
    }
  }

  // Validates `update` against the replica. Returns true and applies it to
  // the replica (assigning *insv_id for vertex inserts); on false, `*why`
  // names the violated precondition.
  bool Validate(GraphUpdate* update, VertexId* insv_id, std::string* why) {
    switch (update->kind) {
      case UpdateKind::kInsertEdge:
        if (update->u == update->v) {
          *why = "self loop";
          return false;
        }
        if (!replica.IsVertexAlive(update->u) ||
            !replica.IsVertexAlive(update->v)) {
          *why = "unknown vertex";
          return false;
        }
        if (replica.HasEdge(update->u, update->v)) {
          *why = "edge exists";
          return false;
        }
        replica.AddEdge(update->u, update->v);
        return true;
      case UpdateKind::kDeleteEdge:
        if (!replica.IsVertexAlive(update->u) ||
            !replica.IsVertexAlive(update->v) ||
            !replica.HasEdge(update->u, update->v)) {
          *why = "no such edge";
          return false;
        }
        replica.RemoveEdgeBetween(update->u, update->v);
        return true;
      case UpdateKind::kInsertVertex: {
        for (const VertexId n : update->neighbors) {
          if (!replica.IsVertexAlive(n)) {
            *why = "unknown neighbor";
            return false;
          }
        }
        std::vector<VertexId> sorted = update->neighbors;
        std::sort(sorted.begin(), sorted.end());
        if (std::adjacent_find(sorted.begin(), sorted.end()) != sorted.end()) {
          *why = "duplicate neighbor";
          return false;
        }
        const VertexId id = replica.AddVertex();
        for (const VertexId n : update->neighbors) replica.AddEdge(id, n);
        *insv_id = id;
        return true;
      }
      case UpdateKind::kDeleteVertex:
        if (!replica.IsVertexAlive(update->u)) {
          *why = "unknown vertex";
          return false;
        }
        replica.RemoveVertex(update->u);
        return true;
    }
    *why = "bad update";
    return false;
  }

  // Applies the coalesced batch through the backend and fills the deferred
  // responses. `reason` picks the flush counter to bump.
  enum class FlushReason { kFull, kDeadline, kBarrier };
  void Flush(FlushReason reason) {
    if (pending_updates.empty()) return;
    // Fencing barrier: if a newer primary claimed the epoch file after
    // these ops were admitted, refuse the whole batch now — the apply/ack
    // below is exactly the step a fenced server must not take.
    CheckEpochFile();
    if (fenced) {
      RefusePendingBatch();
      return;
    }
    const UpdateResult result = backend->ApplyBatch(pending_updates);
    const double now = clock.ElapsedSeconds();
    DYNMIS_CHECK(result.applied ==
                 static_cast<int64_t>(pending_updates.size()));

    ++metrics.batches_flushed;
    metrics.batch_ops_total += static_cast<int64_t>(pending_updates.size());
    metrics.ops_applied += static_cast<int64_t>(pending_updates.size());
    switch (reason) {
      case FlushReason::kFull:
        ++metrics.flushes_full;
        break;
      case FlushReason::kDeadline:
        ++metrics.flushes_deadline;
        break;
      case FlushReason::kBarrier:
        ++metrics.flushes_barrier;
        break;
    }

    // The replica assigned vertex-insert ids at admission; the backend must
    // agree or the admission layer's validation graph has diverged.
    size_t insv = 0;
    for (size_t i = 0; i < pending_meta.size(); ++i) {
      const PendingMeta& meta = pending_meta[i];
      metrics.update_latency.Record(now - meta.enqueue_time);
      const bool vertex_insert =
          meta.verb == Verb::kInsV || meta.verb == Verb::kKIns;
      if (vertex_insert) {
        DYNMIS_CHECK(insv < result.new_vertices.size());
        DYNMIS_CHECK(result.new_vertices[insv] == meta.assigned_id);
        ++insv;
      }
      auto it = connections.find(meta.session);
      if (it == connections.end()) continue;  // Client left; ack evaporates.
      Connection& conn = it->second;
      if (meta.in_frame) {
        // Frames complete strictly FIFO per connection (a frame closes at
        // END before the next BATCH opens), so the front frame owns the
        // oldest pending ops.
        DYNMIS_CHECK(!conn.frames.empty());
        Frame& frame = conn.frames.front();
        --frame.outstanding;
        ++frame.applied;
        SettleFrames(&conn);
      } else {
        Response* r = ClaimDeferred(&conn, /*frame_slot=*/false);
        r->text.clear();
        if (conn.binary) {
          if (vertex_insert) {
            AppendOkIdResponse(&r->text, meta.assigned_id);
          } else {
            AppendOkResponse(&r->text);
          }
        } else if (vertex_insert) {
          r->text = "OK " + std::to_string(meta.assigned_id);
        } else {
          r->text = "OK";
        }
        r->ready = true;
        DrainResponses(&conn);
      }
    }
    RecordAppliedBatch(pending_updates);
    pending_updates.clear();
    pending_meta.clear();
  }

  // Fills every pending deferred ack with a fencing error instead of
  // applying the batch. The admission replica already holds these ops and
  // cannot roll back, so a fenced server's replica may run ahead of its
  // backend by this one batch — harmless, because a fenced server exists
  // only to be decommissioned or re-promoted (which rebuilds nothing from
  // its live state).
  void RefusePendingBatch() {
    for (const PendingMeta& meta : pending_meta) {
      ++metrics.ops_rejected;
      auto it = connections.find(meta.session);
      if (it == connections.end()) continue;
      Connection& conn = it->second;
      if (meta.in_frame) {
        DYNMIS_CHECK(!conn.frames.empty());
        Frame& frame = conn.frames.front();
        --frame.outstanding;
        ++frame.rejected;
        SettleFrames(&conn);
      } else {
        Response* r = ClaimDeferred(&conn, /*frame_slot=*/false);
        r->text.clear();
        if (conn.binary) {
          AppendRejectResponse(&r->text, "fenced");
        } else {
          r->text = "ERR fenced " + std::to_string(epoch);
        }
        r->ready = true;
        DrainResponses(&conn);
      }
    }
    pending_updates.clear();
    pending_meta.clear();
  }

  // Transition to the fenced state: a writer term above our own exists, so
  // a newer primary owns the history from here on. Read queries keep
  // working; writes answer `ERR fenced <epoch>`; the change log is closed
  // so not one more record lands in the shared directory.
  void Fence(int64_t observed_epoch, const char* how) {
    epoch = std::max(epoch, observed_epoch);
    if (fenced) return;
    fenced = true;
    read_only = true;
    log_writer.reset();
    degraded = false;
    degraded_reason.clear();
    unlogged_batches.clear();
    std::fprintf(stderr,
                 "dynmis serve: fenced by epoch %lld (%s) at seq %lld; "
                 "read-only until PROMOTE\n",
                 static_cast<long long>(epoch), how,
                 static_cast<long long>(next_seq));
  }

  // Shared-directory fencing probe: one open+pread of the epoch file. Runs
  // before every batch ack and periodically while idle, so an old primary
  // flips to `ERR fenced` promptly after a new one claims the directory.
  // Allocation-free on the steady path (the file path is prebuilt).
  void CheckEpochFile() {
    if (epoch_path.empty() || fenced) return;
    const int64_t seen = repl::ReadEpochValue(epoch_path.c_str());
    if (seen > epoch) {
      if (read_only) {
        AdoptEpoch(seen);  // A follower just tracks the new term.
      } else {
        Fence(seen, "epoch file");
      }
    }
  }

  // Follower-side epoch adoption: the upstream (or the tailed directory)
  // moved to a new term. Records applied from here on belong to it, so a
  // follower that keeps its own change-log copy rotates to a segment whose
  // header carries the new epoch, and persists the term for its own
  // restart bootstrap.
  void AdoptEpoch(int64_t new_epoch) {
    if (new_epoch <= epoch) return;
    epoch = new_epoch;
    if (options.change_log_dir.empty()) return;
    std::string error;
    if (!repl::WriteEpochFile(options.change_log_dir, epoch, &error)) {
      std::fprintf(stderr, "dynmis serve: cannot persist epoch %lld: %s\n",
                   static_cast<long long>(epoch), error.c_str());
    }
    if (log_writer != nullptr) {
      auto writer = std::make_unique<repl::ChangeLogWriter>();
      if (writer->Open(options.change_log_dir, options.log_segment_bytes,
                       next_seq, epoch, &error)) {
        log_writer = std::move(writer);
      } else {
        std::fprintf(stderr,
                     "dynmis serve: cannot restamp change log at epoch "
                     "%lld: %s\n",
                     static_cast<long long>(epoch), error.c_str());
        log_writer.reset();
      }
    }
  }

  // Post-apply bookkeeping shared by the admission path (Flush) and the
  // follower path (ApplyReplBatch): assigns the batch its sequence number
  // and fans it out to every consumer that tracks the applied stream —
  // the TRACE buffer, the change log, live subscribers, an in-flight
  // reshard, and the background snapshot trigger.
  void RecordAppliedBatch(const std::vector<GraphUpdate>& updates) {
    const int64_t seq = next_seq++;
    if (options.record_trace) {
      trace.updates.insert(trace.updates.end(), updates.begin(),
                           updates.end());
      trace.batch_sizes.push_back(static_cast<int64_t>(updates.size()));
    }
    if (log_writer != nullptr) {
      repl::LogBatch batch;
      batch.seq = seq;
      batch.epoch = epoch;
      batch.updates = updates;
      if (degraded) {
        // Already degraded: the batch was applied (a follower's upstream
        // stream cannot be refused), so buffer it for the retry tick.
        unlogged_batches.push_back(std::move(batch));
      } else {
        std::string error;
        if (log_writer->Append(batch, &error)) {
          ++metrics.repl_batches_logged;
          metrics.repl_ops_logged += static_cast<int64_t>(updates.size());
        } else {
          // A failing change log (ENOSPC, EIO) must not take serving down,
          // but silently dropping records would desync every follower:
          // refuse new writes and keep retrying until the log recovers.
          EnterDegraded(error, std::move(batch));
        }
      }
    }
    PushToSubscribers(seq, updates);
    if (reshard != nullptr) {
      repl::LogBatch batch;
      batch.seq = seq;
      batch.updates = updates;
      {
        std::lock_guard<std::mutex> lock(reshard->mutex);
        reshard->queue.push_back(std::move(batch));
      }
      reshard->cv.notify_all();
    }
    MaybeTriggerSnapshot();
  }

  void EnterDegraded(const std::string& why, repl::LogBatch batch) {
    degraded = true;
    degraded_reason = why;
    unlogged_batches.push_back(std::move(batch));
    next_degraded_retry = clock.ElapsedSeconds() + 0.05;
    std::fprintf(stderr,
                 "dynmis serve: change-log append failed (%s); refusing "
                 "writes until the log recovers\n",
                 why.c_str());
  }

  // Degraded-mode retry tick: re-append everything the log refused, then
  // require one successful Sync before accepting writes again — "recovered"
  // must mean the records are durable, not merely buffered by the kernel.
  void RetryDegradedLog() {
    if (!degraded) return;
    if (log_writer == nullptr) {  // Fenced or torn down meanwhile.
      degraded = false;
      degraded_reason.clear();
      unlogged_batches.clear();
      return;
    }
    const double now = clock.ElapsedSeconds();
    if (now < next_degraded_retry) return;
    std::string error;
    while (!unlogged_batches.empty()) {
      const repl::LogBatch& batch = unlogged_batches.front();
      if (!log_writer->Append(batch, &error)) {
        degraded_reason = error;
        next_degraded_retry = now + 0.25;
        return;
      }
      ++metrics.repl_batches_logged;
      metrics.repl_ops_logged += static_cast<int64_t>(batch.updates.size());
      unlogged_batches.pop_front();
    }
    if (!log_writer->Sync(&error)) {
      degraded_reason = error;
      next_degraded_retry = now + 0.25;
      return;
    }
    degraded = false;
    degraded_reason.clear();
    std::fprintf(stderr,
                 "dynmis serve: change log recovered at seq %lld; accepting "
                 "writes again\n",
                 static_cast<long long>(next_seq));
  }

  // One container holding the backend's sections plus the server's own
  // "keymap" section, so a warm restart or follower bootstrap restores the
  // external-key bindings along with the graph. Engine-only loaders skip
  // the extra section.
  SnapshotStatus SaveServerSnapshot(std::ostream& out) {
    SnapshotWriter writer;
    backend->SaveTo(&writer);
    keymap.SaveTo(&writer);
    return writer.WriteTo(out);
  }

  // Copy-on-collect base snapshots: serialize on the loop thread (the only
  // thread that may touch the backend), hand the bytes to the background
  // writer. Runs at batch boundaries only, so the snapshot sits exactly at
  // a change-log record edge. Two cadences, either of which can trip:
  // every N applied batches (snapshot_every_batches) and/or every
  // snapshot_interval_ms of wall time — the time-based one still waits for
  // the next batch boundary, so an idle server writes nothing new.
  void MaybeTriggerSnapshot() {
    if (snapshotter == nullptr || fenced || degraded) return;
    const bool batches_due =
        options.snapshot_every_batches > 0 &&
        next_seq - last_snapshot_trigger_seq >= options.snapshot_every_batches;
    const double now = clock.ElapsedSeconds();
    const bool interval_due =
        options.snapshot_interval_ms > 0 &&
        now - last_snapshot_trigger_time >=
            static_cast<double>(options.snapshot_interval_ms) * 1e-3;
    if (!batches_due && !interval_due) return;
    if (snapshotter->busy()) return;  // Try again at a later boundary.
    std::ostringstream out;
    const SnapshotStatus status = SaveServerSnapshot(out);
    if (!status.ok) {
      std::fprintf(stderr, "dynmis serve: snapshot serialize failed: %s\n",
                   status.message.c_str());
      return;
    }
    if (snapshotter->Submit(next_seq, epoch, std::move(out).str())) {
      last_snapshot_trigger_seq = next_seq;
      last_snapshot_trigger_time = now;
    }
  }

  // Appends one RBATCH frame to every live subscriber's output. A live
  // subscriber that stopped reading is demoted to disk catch-up (when a
  // change log exists) instead of unboundedly buffering in memory.
  void PushToSubscribers(int64_t seq, const std::vector<GraphUpdate>& updates) {
    for (auto& [session, conn] : connections) {
      if (!conn.subscriber || !conn.sub_live) continue;
      if (conn.pending_out_bytes() > options.max_output_bytes) {
        if (log_writer != nullptr) {
          auto cursor = std::make_unique<repl::ChangeLogCursor>();
          std::string error;
          if (cursor->Open(options.change_log_dir, seq, &error)) {
            conn.sub_live = false;
            conn.sub_cursor = std::move(cursor);
            continue;
          }
        }
        conn.overloaded = true;
        MarkDirty(&conn);
        continue;
      }
      AppendRBatch(&conn, seq, epoch, updates);
    }
  }

  void AppendRBatch(Connection* conn, int64_t seq, int64_t batch_epoch,
                    const std::vector<GraphUpdate>& updates) {
    std::string frame = "RBATCH " + std::to_string(seq) + " " +
                        std::to_string(updates.size()) + " " +
                        std::to_string(batch_epoch) + "\n";
    for (const GraphUpdate& update : updates) {
      frame += FormatCommandLine(update);
      frame += '\n';
    }
    conn->staged += frame;
    MarkDirty(conn);
    ++metrics.repl_batches_streamed;
  }

  // Advances catching-up subscribers from their change-log cursors; a
  // subscriber that reaches the head switches to live pushes.
  void PumpSubscribers() {
    for (auto& [session, conn] : connections) {
      if (!conn.subscriber || conn.sub_live) continue;
      while (conn.pending_out_bytes() < options.max_output_bytes) {
        if (conn.sub_cursor->next_seq() >= next_seq) {
          conn.sub_live = true;
          conn.sub_cursor.reset();
          break;
        }
        repl::LogBatch batch;
        bool available = false;
        std::string error;
        if (!conn.sub_cursor->Next(&batch, &available, &error)) {
          Respond(&conn, "ERR subscribe: " + error);
          conn.close_after_write = true;
          conn.subscriber = false;
          conn.sub_cursor.reset();
          break;
        }
        if (!available) break;  // Writer not caught up on disk yet.
        AppendRBatch(&conn, batch.seq, batch.epoch, batch.updates);
      }
    }
  }

  void MarkDirty(Connection* conn) {
    if (conn->dirty) return;
    conn->dirty = true;
    dirty_sessions.push_back(conn->session);
  }

  // The oldest unready slot of the requested type; the caller encodes the
  // response into it in place (slot strings keep their capacity), marks it
  // ready, and calls DrainResponses.
  Response* ClaimDeferred(Connection* conn, bool frame_slot) {
    for (size_t i = 0; i < conn->responses.size(); ++i) {
      Response& r = conn->responses[i];
      if (!r.ready && r.frame_slot == frame_slot) return &r;
    }
    DYNMIS_CHECK(false);  // An applied op / ended frame always has its slot.
    return nullptr;
  }

  // Acks every leading finished frame, strictly FIFO: a later frame whose
  // ops all applied (or were all rejected) must still wait behind an older
  // in-flight frame, because response slots fill front to back.
  void SettleFrames(Connection* conn) {
    while (!conn->frames.empty()) {
      Frame& frame = conn->frames.front();
      if (frame.outstanding != 0) break;
      if (frame.aborted) {
        conn->frames.pop_front();
        continue;
      }
      if (!frame.end_seen) break;
      Response* r = ClaimDeferred(conn, /*frame_slot=*/true);
      r->text.clear();
      if (conn->binary) {
        AppendBatchAckResponse(&r->text, frame.applied, frame.rejected,
                               frame.insert_ids);
      } else {
        r->text = "OK " + std::to_string(frame.applied) + " " +
                  std::to_string(frame.rejected);
        for (const VertexId id : frame.insert_ids) {
          r->text += ' ';
          r->text += std::to_string(id);
        }
      }
      r->ready = true;
      conn->frames.pop_front();
      DrainResponses(conn);
    }
  }

  // Moves the ready prefix of the response stream into the staged output
  // (shipped to the connection's I/O thread at ShipOutput). Write-side
  // backpressure lives here: a client that has not consumed
  // max_output_bytes of earlier responses and still wants more is marked
  // overloaded instead of being allowed to grow server memory unboundedly.
  void DrainResponses(Connection* conn) {
    while (!conn->responses.empty() && conn->responses.front().ready) {
      if (conn->pending_out_bytes() > options.max_output_bytes) {
        conn->overloaded = true;
        MarkDirty(conn);
        return;
      }
      conn->staged += conn->responses.front().text;
      if (!conn->binary) conn->staged += '\n';
      conn->responses.pop_front();
    }
    MarkDirty(conn);
  }

  // Text-protocol immediate response (`text` is the line, no newline).
  void Respond(Connection* conn, std::string text) {
    Response& r = conn->responses.PushSlot();
    r.ready = true;
    r.frame_slot = false;
    r.text = std::move(text);
    DrainResponses(conn);
  }

  // Encoding-aware error response: "ERR <msg>" on text connections, a
  // kBinRespErr frame on binary ones.
  void RespondError(Connection* conn, const std::string& msg) {
    if (!conn->binary) {
      Respond(conn, "ERR " + msg);
      return;
    }
    Response& r = conn->responses.PushSlot();
    r.ready = true;
    r.frame_slot = false;
    r.text.clear();
    AppendErrResponse(&r.text, msg);
    DrainResponses(conn);
  }

  // Encoding-aware admission rejection ("ERR rejected: <why>" / kBinRespReject).
  void RespondReject(Connection* conn, const std::string& why) {
    if (!conn->binary) {
      Respond(conn, "ERR rejected: " + why);
      return;
    }
    Response& r = conn->responses.PushSlot();
    r.ready = true;
    r.frame_slot = false;
    r.text.clear();
    AppendRejectResponse(&r.text, why);
    DrainResponses(conn);
  }

  // Write refusal in the current failure mode: `ERR fenced <epoch>` once a
  // newer primary exists (the epoch tells the client where to go), plain
  // `ERR readonly` for an unpromoted follower or a degraded primary.
  void RefuseWrite(Connection* conn) {
    if (conn->binary) {
      RespondReject(conn, fenced ? "fenced" : "readonly");
    } else if (fenced) {
      Respond(conn, "ERR fenced " + std::to_string(epoch));
    } else {
      Respond(conn, "ERR readonly");
    }
  }

  void RespondDeferred(Connection* conn, bool frame_slot) {
    Response& r = conn->responses.PushSlot();
    r.ready = false;
    r.frame_slot = frame_slot;
    r.text.clear();
  }

  // ---- Command handling -----------------------------------------------------

  // An unparseable text line (the I/O thread reports it as kBadLine).
  // Recoverable: the connection stays open unless it was the handshake.
  void HandleBadLine(Connection* conn, const std::string& error) {
    ++metrics.protocol_errors;
    if (conn->close_after_write) return;
    if (conn->in_frame()) {
      AbortFrame(conn, "BATCH: " + error);
      return;
    }
    Respond(conn, "ERR " + error);
    if (!conn->handshaken) {
      conn->close_after_write = true;
      MarkDirty(conn);
    }
  }

  // Protocol-fatal input (overlong line, malformed binary frame): one error
  // response, then the connection winds down.
  void HandleFatal(Connection* conn, const std::string& error) {
    ++metrics.protocol_errors;
    if (conn->close_after_write) return;
    if (conn->in_frame()) {
      AbortFrame(conn, "BATCH: " + error);
    } else {
      RespondError(conn, error);
    }
    conn->close_after_write = true;
    MarkDirty(conn);
  }

  Frame& NewFrame(Connection* conn) {
    Frame& frame = conn->frames.PushSlot();
    frame.outstanding = 0;
    frame.applied = 0;
    frame.rejected = 0;
    frame.insert_ids.clear();
    frame.end_seen = false;
    frame.aborted = false;
    return frame;
  }

  // A binary BATCH frame rejected as a unit (readonly): swallow its decoded
  // op commands and the closing kEnd so exactly one response frame answers
  // the one request frame.
  void ConsumeDiscard(Connection* conn, const Command& cmd) {
    if (conn->discard_updates_left > 0) {
      DYNMIS_CHECK(IsUpdateVerb(cmd.verb));  // Decoder guarantees shape.
      if (--conn->discard_updates_left == 0) conn->discard_end = true;
      return;
    }
    DYNMIS_CHECK(cmd.verb == Verb::kEnd);
    conn->discard_end = false;
  }

  void HandleCommand(Connection* conn, Command& cmd) {
    ++metrics.commands[static_cast<int>(cmd.verb)];

    if (!conn->handshaken) {
      const bool text_ok =
          cmd.version == kProtocolVersion && !cmd.binary;
      const bool bin_ok =
          cmd.version == kBinaryProtocolVersion && cmd.binary;
      if (cmd.verb != Verb::kHello || (!text_ok && !bin_ok)) {
        ++metrics.protocol_errors;
        // The refusal is a text line either way: the upgrade never happened.
        conn->staged += "ERR handshake: expected HELLO " +
                        std::to_string(kProtocolVersion) + " or HELLO " +
                        std::to_string(kBinaryProtocolVersion) + " BIN\n";
        conn->close_after_write = true;
        MarkDirty(conn);
        return;
      }
      conn->handshaken = true;
      conn->binary = cmd.binary;
      // The greeting is the connection's last text line; on a binary
      // connection everything after it is framed.
      conn->staged += "OK DYNMIS ";
      conn->staged +=
          std::to_string(conn->binary ? kBinaryProtocolVersion
                                      : kProtocolVersion);
      if (conn->binary) conn->staged += " BIN";
      conn->staged += " backend=" + backend->Kind() +
                      " shards=" + std::to_string(backend->NumShards()) +
                      " algorithm=" + backend->Stats().algorithm + "\n";
      MarkDirty(conn);
      return;
    }

    if (conn->discarding()) {
      ConsumeDiscard(conn, cmd);
      return;
    }

    if (conn->in_frame()) {
      HandleFrameLine(conn, cmd);
      return;
    }

    switch (cmd.verb) {
      case Verb::kHello:
        RespondError(conn, "already handshaken");
        return;
      case Verb::kIns:
      case Verb::kDel:
      case Verb::kInsV:
      case Verb::kDelV:
      case Verb::kKIns:
      case Verb::kKDel:
        if (read_only || degraded) {
          ++metrics.ops_rejected;
          RefuseWrite(conn);
          return;
        }
        AdmitSingle(conn, &cmd);
        return;
      case Verb::kBatch:
        if (read_only || degraded) {
          if (conn->binary) {
            // One reject answers the whole frame; its decoded ops and END
            // are still in flight behind this command — discard them.
            RespondReject(conn, fenced ? "fenced" : "readonly");
            conn->discard_updates_left = cmd.count;
            conn->discard_end = false;
          } else {
            RefuseWrite(conn);
          }
          return;
        }
        conn->frame_updates_left = cmd.count;
        NewFrame(conn);
        return;  // Acked as a unit at END.
      case Verb::kEnd:
        Respond(conn, "ERR END without BATCH");
        return;
      case Verb::kQuery:
      case Verb::kKQuery:
      case Verb::kSolution:
      case Verb::kStats:
      case Verb::kVerify:
      case Verb::kSnapshot:
      case Verb::kTrace:
        HandleQuery(conn, cmd);
        return;
      case Verb::kRepl:
        HandleRepl(conn, cmd);
        return;
      case Verb::kPromote:
        Flush(FlushReason::kBarrier);
        if (DoPromote()) {
          Respond(conn, "OK PROMOTED " + std::to_string(next_seq) +
                            " EPOCH " + std::to_string(epoch));
        } else {
          Respond(conn, "ERR promote: cannot claim a fresh epoch "
                        "(see server log)");
        }
        return;
      case Verb::kReshard:
        HandleReshard(conn, cmd);
        return;
      case Verb::kQuit:
        Flush(FlushReason::kBarrier);  // Deferred acks precede the goodbye.
        Respond(conn, "OK bye");
        conn->close_after_write = true;
        MarkDirty(conn);
        return;
    }
  }

  void AdmitSingle(Connection* conn, Command* cmd) {
    VertexId insv_id = kInvalidVertex;
    std::string why;
    if (!ResolveKeyed(cmd, &why) ||
        !Validate(&cmd->update, &insv_id, &why)) {
      ++metrics.ops_rejected;
      RespondReject(conn, why);
      return;
    }
    CommitKeyed(cmd->update, insv_id);
    MaybeScheduleWindow(cmd->update);
    ++metrics.ops_admitted;
    RespondDeferred(conn, /*frame_slot=*/false);
    pending_updates.push_back(std::move(cmd->update));
    pending_meta.push_back({conn->session, cmd->verb, clock.ElapsedSeconds(),
                            insv_id, /*in_frame=*/false});
    if (static_cast<int>(pending_updates.size()) >= options.batch_max_ops) {
      Flush(FlushReason::kFull);
    }
  }

  void HandleFrameLine(Connection* conn, Command& cmd) {
    if (conn->awaiting_end) {
      if (cmd.verb != Verb::kEnd) {
        ++metrics.protocol_errors;
        AbortFrame(conn, std::string("BATCH: expected END, got ") +
                             VerbName(cmd.verb));
        return;
      }
      conn->awaiting_end = false;
      conn->frames.back().end_seen = true;
      // The frame's ack slot, at END's position in the response stream.
      RespondDeferred(conn, /*frame_slot=*/true);
      SettleFrames(conn);
      return;
    }
    if (!IsUpdateVerb(cmd.verb)) {
      ++metrics.protocol_errors;
      AbortFrame(conn, std::string("BATCH: expected update line, got ") +
                           VerbName(cmd.verb));
      return;
    }
    Frame& frame = conn->frames.back();
    VertexId insv_id = kInvalidVertex;
    std::string why;
    if (!ResolveKeyed(&cmd, &why) ||
        !Validate(&cmd.update, &insv_id, &why)) {
      ++metrics.ops_rejected;
      ++frame.rejected;
    } else {
      CommitKeyed(cmd.update, insv_id);
      MaybeScheduleWindow(cmd.update);
      ++metrics.ops_admitted;
      ++frame.outstanding;
      if (cmd.verb == Verb::kInsV || cmd.verb == Verb::kKIns) {
        frame.insert_ids.push_back(insv_id);
      }
      pending_updates.push_back(std::move(cmd.update));
      pending_meta.push_back({conn->session, cmd.verb, clock.ElapsedSeconds(),
                              insv_id, /*in_frame=*/true});
    }
    if (--conn->frame_updates_left == 0) conn->awaiting_end = true;
    if (static_cast<int>(pending_updates.size()) >= options.batch_max_ops) {
      Flush(FlushReason::kFull);
    }
  }

  // The admitted ops of an aborted frame stay admitted (they were valid);
  // only the frame-level ack is replaced by the error (`msg`, without the
  // "ERR " prefix — RespondError adds the encoding). The frame record
  // survives until its in-flight ops apply, so Flush's FIFO accounting
  // stays exact.
  void AbortFrame(Connection* conn, const std::string& msg) {
    conn->frame_updates_left = 0;
    conn->awaiting_end = false;
    DYNMIS_CHECK(!conn->frames.empty());
    if (conn->frames.back().outstanding == 0) {
      conn->frames.pop_back();
    } else {
      conn->frames.back().aborted = true;
    }
    RespondError(conn, msg);
  }

  void HandleQuery(Connection* conn, const Command& cmd) {
    const Timer query_timer;
    Flush(FlushReason::kBarrier);  // Read-your-writes for every client.
    if (conn->binary) {
      // Only QUERY and KQUERY have binary request frames; the other query
      // verbs are text-only and cannot arrive here.
      DYNMIS_CHECK(cmd.verb == Verb::kQuery || cmd.verb == Verb::kKQuery);
      Response& r = conn->responses.PushSlot();
      r.ready = true;
      r.frame_slot = false;
      r.text.clear();
      if (cmd.verb == Verb::kKQuery) {
        const VertexId id = keymap.Lookup(cmd.update.key);
        if (id == kInvalidVertex) {
          AppendErrResponse(&r.text, "unknown key");
        } else {
          AppendKQueryResponse(&r.text, id, backend->InSolution(id));
        }
      } else if (!replica.IsVertexAlive(cmd.vertex)) {
        AppendErrResponse(&r.text, "unknown vertex");
      } else {
        AppendQueryResponse(&r.text, backend->InSolution(cmd.vertex));
      }
      metrics.query_latency.Record(query_timer.ElapsedSeconds());
      DrainResponses(conn);
      return;
    }
    std::string response;
    switch (cmd.verb) {
      case Verb::kQuery:
        if (!replica.IsVertexAlive(cmd.vertex)) {
          response = "ERR unknown vertex";
        } else {
          response = backend->InSolution(cmd.vertex) ? "OK 1" : "OK 0";
        }
        break;
      case Verb::kKQuery: {
        const VertexId id = keymap.Lookup(cmd.update.key);
        if (id == kInvalidVertex) {
          response = "ERR unknown key";
        } else {
          response = "OK " + std::to_string(id) +
                     (backend->InSolution(id) ? " 1" : " 0");
        }
        break;
      }
      case Verb::kSolution: {
        std::vector<VertexId> solution;
        backend->CollectSolution(&solution);
        std::sort(solution.begin(), solution.end());
        response = "OK " + std::to_string(solution.size());
        for (const VertexId v : solution) {
          response += ' ';
          response += std::to_string(v);
        }
        break;
      }
      case Verb::kStats:
        response = "OK " + StatsJson();
        break;
      case Verb::kVerify:
        response = VerifySolution();
        break;
      case Verb::kSnapshot: {
        if (!FileCommandsAllowed()) {
          response = kFileCommandsRefused;
          break;
        }
        // Crash-safe publish: serialize, then tmp-write/fsync/rename so a
        // crash mid-command can never leave a torn snapshot at `path`.
        std::ostringstream out;
        const SnapshotStatus status = SaveServerSnapshot(out);
        if (!status.ok) {
          response = "ERR snapshot: " + status.message;
          break;
        }
        const std::string bytes = std::move(out).str();
        std::string publish_error;
        if (!io::WriteFileAtomic(cmd.path, bytes, &publish_error)) {
          response = "ERR snapshot: " + publish_error;
        } else {
          response = "OK " + std::to_string(static_cast<int64_t>(bytes.size()));
        }
        break;
      }
      case Verb::kTrace:
        if (!FileCommandsAllowed()) {
          response = kFileCommandsRefused;
        } else if (!options.record_trace) {
          response = "ERR trace recording disabled (--record-trace)";
        } else if (!WriteServeTrace(trace, cmd.path)) {
          response = "ERR cannot write " + cmd.path;
        } else {
          response = "OK " + std::to_string(trace.updates.size());
        }
        break;
      default:
        response = "ERR internal";
        break;
    }
    metrics.query_latency.Record(query_timer.ElapsedSeconds());
    Respond(conn, std::move(response));
  }

  // Independence + maximality of the backend's solution against the replica
  // — the same state every admitted op was validated against, with the same
  // checker the loadgen runs client-side (src/serve/verify.h).
  std::string VerifySolution() {
    std::vector<VertexId> solution;
    backend->CollectSolution(&solution);
    bool independent = false;
    bool maximal = false;
    CheckSolution(replica, solution, &independent, &maximal);
    return std::string("OK independent=") + (independent ? "1" : "0") +
           " maximal=" + (maximal ? "1" : "0") +
           " size=" + std::to_string(solution.size());
  }

  // ---- Replication commands -------------------------------------------------

  void HandleRepl(Connection* conn, const Command& cmd) {
    Flush(FlushReason::kBarrier);  // next_seq must reflect admitted writes.
    if (cmd.path == "STATUS") {
      Respond(conn, "OK REPL " + std::to_string(next_seq) + " EPOCH " +
                        std::to_string(epoch));
      return;
    }
    // SUBSCRIBE <seq> [EPOCH <e>].
    // Fencing handshake: a subscriber announcing a term above ours has seen
    // a newer primary — a reconnecting follower after a failover, say. A
    // writable server must fence itself rather than keep acking writes the
    // new history will never contain; a follower just adopts the term.
    if (cmd.epoch > epoch) {
      if (!read_only) {
        Fence(cmd.epoch, "subscriber handshake");
      } else {
        epoch = cmd.epoch;
      }
    }
    if (fenced) {
      // Streaming from a fenced server would hand out records the new
      // primary's history may have superseded.
      Respond(conn, "ERR fenced " + std::to_string(epoch));
      return;
    }
    if (conn->subscriber) {
      Respond(conn, "ERR already subscribed");
      return;
    }
    if (cmd.seq > next_seq) {
      Respond(conn, "ERR subscribe: seq " + std::to_string(cmd.seq) +
                        " is ahead of head " + std::to_string(next_seq));
      return;
    }
    if (cmd.seq == next_seq) {
      conn->subscriber = true;
      conn->sub_live = true;
      Respond(conn, "OK REPL " + std::to_string(next_seq) + " EPOCH " +
                        std::to_string(epoch));
      return;
    }
    // Historical start: catch up from the change log, then go live.
    if (options.change_log_dir.empty()) {
      Respond(conn, "ERR subscribe: no change log on this server "
                    "(history before seq " +
                        std::to_string(next_seq) + " is gone)");
      return;
    }
    auto cursor = std::make_unique<repl::ChangeLogCursor>();
    std::string error;
    if (!cursor->Open(options.change_log_dir, cmd.seq, &error)) {
      Respond(conn, "ERR subscribe: " + error);
      return;
    }
    conn->subscriber = true;
    conn->sub_live = false;
    conn->sub_cursor = std::move(cursor);
    Respond(conn, "OK REPL " + std::to_string(cmd.seq) + " EPOCH " +
                      std::to_string(epoch));
  }

  // Follower -> primary transition. Idempotent; callable from the PROMOTE
  // verb or SIGUSR1, and the recovery path for a fenced server. The new
  // incarnation claims a fencing epoch strictly above everything it has
  // observed AND above the directory's epoch file, and makes the claim
  // durable *before* serving writes — any still-running old primary that
  // probes the file fences itself, and a crash right after the claim merely
  // burns a term. Returns false (still read-only) when the claim cannot be
  // made durable. Only promote after the old primary is dead or reachable
  // through the shared directory: two writers on one sequence space with
  // neither able to observe the other's epoch is a split brain no log
  // format can repair.
  bool DoPromote() {
    if (!read_only && !fenced) return true;
    const std::string& dir = !options.change_log_dir.empty()
                                 ? options.change_log_dir
                                 : options.follow_dir;
    int64_t new_epoch = epoch;
    if (!dir.empty()) {
      new_epoch = std::max(new_epoch, repl::ReadEpochFile(dir));
    }
    if (!options.follow_dir.empty() && options.follow_dir != dir) {
      new_epoch = std::max(new_epoch, repl::ReadEpochFile(options.follow_dir));
    }
    ++new_epoch;
    if (!dir.empty()) {
      std::string error;
      if (!repl::WriteEpochFile(dir, new_epoch, &error)) {
        std::fprintf(stderr,
                     "dynmis serve: promote aborted: cannot claim epoch "
                     "%lld: %s\n",
                     static_cast<long long>(new_epoch), error.c_str());
        return false;
      }
    }
    if (!options.follow_dir.empty() && options.follow_dir != dir) {
      // The followed directory is the coordination point an old primary
      // probes; leave the claim there too. Best-effort — that host may
      // already be gone, which is exactly why we are promoting.
      std::string error;
      if (!repl::WriteEpochFile(options.follow_dir, new_epoch, &error)) {
        std::fprintf(stderr,
                     "dynmis serve: promote: cannot fence old primary via "
                     "%s: %s\n",
                     options.follow_dir.c_str(), error.c_str());
      }
    }
    epoch = new_epoch;
    fenced = false;
    read_only = false;
    degraded = false;
    degraded_reason.clear();
    unlogged_batches.clear();
    ++metrics.repl_promotions;
    CloseUpstream();
    reconnect_at = -1;
    reconnect_attempts = 0;
    tail_cursor.reset();
    if (!dir.empty()) {
      // Fresh segment stamped with the new term, even if this server
      // already had a writer (a fenced ex-primary's writer was closed; a
      // logging follower's carries the old epoch in its open segment).
      log_writer.reset();
      auto writer = std::make_unique<repl::ChangeLogWriter>();
      std::string error;
      if (writer->Open(dir, options.log_segment_bytes, next_seq, epoch,
                       &error)) {
        log_writer = std::move(writer);
        options.change_log_dir = dir;  // Subscribers catch up from here.
      } else {
        std::fprintf(stderr,
                     "dynmis serve: promote: cannot open change log: %s\n",
                     error.c_str());
      }
      epoch_path = dir + "/epoch";
    }
    if (!dir.empty() && snapshotter == nullptr &&
        (options.snapshot_every_batches > 0 ||
         options.snapshot_interval_ms > 0)) {
      snapshotter = std::make_unique<repl::Snapshotter>(dir);
      last_snapshot_trigger_seq = next_seq;
      last_snapshot_trigger_time = clock.ElapsedSeconds();
    }
    std::fprintf(stderr,
                 "dynmis serve: promoted to primary at seq %lld epoch %lld\n",
                 static_cast<long long>(next_seq),
                 static_cast<long long>(epoch));
    return true;
  }

  // ---- Follower upstream (TCP) ----------------------------------------------

  // host:port -> sockaddr. Fails only on malformed configuration, which —
  // unlike a refused connection — is not worth retrying.
  bool ParseFollowAddr(sockaddr_in* addr, std::string* error) {
    const size_t colon = options.follow_addr.rfind(':');
    if (colon == std::string::npos) {
      *error = "--follow expects host:port";
      return false;
    }
    const std::string host = options.follow_addr.substr(0, colon);
    const int port = std::atoi(options.follow_addr.c_str() + colon + 1);
    addr->sin_family = AF_INET;
    addr->sin_port = htons(static_cast<uint16_t>(port));
    if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
      *error = "--follow host must be an IPv4 address: " + host;
      return false;
    }
    return true;
  }

  bool ConnectUpstream(std::string* error) {
    sockaddr_in addr{};
    if (!ParseFollowAddr(&addr, error)) return false;
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    if (faultfs::Connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                         sizeof(addr), options.follow_addr.c_str()) != 0) {
      *error = "connect " + options.follow_addr + ": " + std::strerror(errno);
      close(fd);
      return false;
    }
    // Handshake + subscription sent eagerly while the socket is still
    // blocking; everything after is async in the poll loop. The announced
    // epoch lets a stale primary fence itself on our reconnect.
    const std::string hello = "HELLO " + std::to_string(kProtocolVersion) +
                              "\nREPL SUBSCRIBE " + std::to_string(next_seq) +
                              " EPOCH " + std::to_string(epoch) + "\n";
    size_t sent = 0;
    while (sent < hello.size()) {
      const ssize_t n =
          send(fd, hello.data() + sent, hello.size() - sent, MSG_NOSIGNAL);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        *error = "send to " + options.follow_addr + ": " +
                 std::strerror(errno);
        close(fd);
        return false;
      }
      sent += static_cast<size_t>(n);
    }
    SetNonBlocking(fd);
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    upstream_fd = fd;
    upstream_state = UpstreamState::kGreeting;
    upstream_in = std::make_unique<LineBuffer>(options.max_line_bytes);
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kEngineUpstreamTag;
    epoll_ctl(epoll_fd, EPOLL_CTL_ADD, upstream_fd, &ev);
    return true;
  }

  void CloseUpstream() {
    if (upstream_fd >= 0) {
      close(upstream_fd);
      upstream_fd = -1;
    }
    upstream_state = UpstreamState::kDown;
    upstream_in.reset();
    rbatch_seq = -1;
    rbatch_left = 0;
    rbatch_updates.clear();
  }

  // A lost upstream is survivable: the follower keeps serving reads at its
  // current sequence and retries the connection with exponential backoff
  // (resubscribing from next_seq) until the primary returns or an operator
  // PROMOTEs this server.
  void UpstreamFailed(const std::string& why) {
    std::fprintf(stderr,
                 "dynmis serve: upstream lost (%s); read-only at seq %lld, "
                 "reconnecting with backoff (PROMOTE to accept writes)\n",
                 why.c_str(), static_cast<long long>(next_seq));
    CloseUpstream();
    ScheduleReconnect();
  }

  // Next attempt at 50ms * 2^attempts, capped at --reconnect-max-ms, with
  // +/-25% jitter so a fleet of followers does not hammer a recovering
  // primary in lockstep.
  void ScheduleReconnect() {
    if (options.follow_addr.empty() || !read_only || fenced) return;
    const int64_t cap = std::max<int64_t>(options.reconnect_max_ms, 50);
    int64_t base_ms = 50;
    for (int i = 0; i < reconnect_attempts && base_ms < cap; ++i) {
      base_ms *= 2;
    }
    base_ms = std::min(base_ms, cap);
    const int64_t jitter =
        static_cast<int64_t>(reconnect_rng.NextBounded(
            static_cast<uint64_t>(base_ms / 2 + 1))) -
        base_ms / 4;
    reconnect_at = clock.ElapsedSeconds() +
                   static_cast<double>(base_ms + jitter) * 1e-3;
    ++reconnect_attempts;
  }

  void MaybeReconnectUpstream() {
    if (reconnect_at < 0 || upstream_fd >= 0) return;
    if (!read_only || fenced) {
      reconnect_at = -1;  // Promoted (or fenced) meanwhile; stop trying.
      return;
    }
    if (clock.ElapsedSeconds() < reconnect_at) return;
    reconnect_at = -1;
    std::string error;
    if (ConnectUpstream(&error)) {
      ++metrics.repl_reconnects;
      std::fprintf(stderr,
                   "dynmis serve: upstream reconnected, resubscribed from "
                   "seq %lld (attempt %d)\n",
                   static_cast<long long>(next_seq), reconnect_attempts);
    } else {
      std::fprintf(stderr, "dynmis serve: reconnect failed: %s\n",
                   error.c_str());
      ScheduleReconnect();
    }
  }

  void ReadUpstream() {
    char buf[4096];
    for (int chunks = 0; chunks < 64 && upstream_fd >= 0; ++chunks) {
      const ssize_t n = recv(upstream_fd, buf, sizeof(buf), 0);
      if (n > 0) {
        upstream_in->Append(buf, static_cast<size_t>(n));
        while (upstream_fd >= 0) {
          auto line = upstream_in->NextLine();
          if (!line) break;
          std::string error;
          if (!HandleUpstreamLine(*line, &error)) {
            UpstreamFailed(error);
            return;
          }
        }
        if (upstream_fd >= 0 && upstream_in->overflowed()) {
          UpstreamFailed("line too long");
          return;
        }
        continue;
      }
      if (n == 0) {
        UpstreamFailed("connection closed");
        return;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      UpstreamFailed(std::strerror(errno));
      return;
    }
  }

  bool HandleUpstreamLine(const std::string& line, std::string* error) {
    switch (upstream_state) {
      case UpstreamState::kGreeting:
        if (line.rfind("OK DYNMIS ", 0) != 0) {
          *error = "bad greeting: " + line;
          return false;
        }
        upstream_state = UpstreamState::kSubscribeAck;
        return true;
      case UpstreamState::kSubscribeAck: {
        long long seq = -1;
        long long ack_epoch = -1;
        const int got = std::sscanf(line.c_str(), "OK REPL %lld EPOCH %lld",
                                    &seq, &ack_epoch);
        if (got < 1 || seq != next_seq) {
          *error = "subscribe refused: " + line;
          return false;
        }
        // The primary's term becomes ours: a restarted primary opens a new
        // epoch, and every record we now apply belongs to it.
        if (got == 2 && ack_epoch > epoch) AdoptEpoch(ack_epoch);
        upstream_head = seq;
        upstream_state = UpstreamState::kStreaming;
        reconnect_attempts = 0;  // Backoff restarts small next time.
        return true;
      }
      case UpstreamState::kStreaming: {
        if (rbatch_left > 0) {
          Command cmd;
          if (!ParseCommand(line, &cmd, error) || !IsUpdateVerb(cmd.verb)) {
            if (error->empty()) *error = "non-update line in RBATCH";
            return false;
          }
          rbatch_updates.push_back(std::move(cmd.update));
          if (--rbatch_left == 0) {
            ApplyReplBatch(&rbatch_updates);
            rbatch_updates.clear();
            rbatch_seq = -1;
          }
          return true;
        }
        long long seq = -1;
        long long count = -1;
        long long frame_epoch = -1;
        const int got = std::sscanf(line.c_str(), "RBATCH %lld %lld %lld",
                                    &seq, &count, &frame_epoch);
        if (got < 2 || count < 0) {
          *error = "expected RBATCH frame, got: " + line;
          return false;
        }
        if (seq != next_seq) {
          *error = "sequence gap: RBATCH " + std::to_string(seq) +
                   " at local seq " + std::to_string(next_seq);
          return false;
        }
        // Epoch discipline: records from a term below what we have already
        // observed come from a stale primary and must never apply; a term
        // above ours is a legitimate new incarnation we adopt.
        if (got == 3 && frame_epoch < epoch) {
          *error = "stale epoch " + std::to_string(frame_epoch) +
                   " at local epoch " + std::to_string(epoch);
          return false;
        }
        if (got == 3 && frame_epoch > epoch) AdoptEpoch(frame_epoch);
        upstream_head = seq + 1;
        rbatch_seq = seq;
        rbatch_left = static_cast<int>(count);
        rbatch_updates.clear();
        if (rbatch_left == 0) ApplyReplBatch(&rbatch_updates);
        return true;
      }
      case UpstreamState::kDown:
        break;
    }
    *error = "unexpected line";
    return false;
  }

  // Applies one replicated batch exactly as the primary did — one
  // ApplyBatch call per RBATCH, so the batch partition (and therefore the
  // final solution) is identical — and mirrors it into the admission
  // replica, checking that vertex-insert ids come out byte-for-byte equal.
  // Keyed ops go through the follower's own key map: a keyed delete's id is
  // re-resolved locally (the RBATCH text spelling carries only the key),
  // and a keyed insert binds the locally assigned id — which the id checks
  // above prove equals the primary's, so the two maps stay byte-identical.
  void ApplyReplBatch(std::vector<GraphUpdate>* updates) {
    for (GraphUpdate& update : *updates) {
      if (update.kind == UpdateKind::kDeleteVertex && !update.key.empty()) {
        const VertexId id = keymap.Lookup(update.key);
        DYNMIS_CHECK(id != kInvalidVertex);  // Divergence: unknown key.
        // Change-log records carry the primary's resolved id; it must match
        // this replica's own resolution or the maps have diverged.
        DYNMIS_CHECK(update.u == kInvalidVertex || update.u == id);
        update.u = id;
      }
    }
    const UpdateResult result = backend->ApplyBatch(*updates);
    DYNMIS_CHECK(result.applied == static_cast<int64_t>(updates->size()));
    size_t insv = 0;
    for (const GraphUpdate& update : *updates) {
      const VertexId id = ApplyUpdate(&replica, update);
      if (update.kind == UpdateKind::kInsertVertex) {
        DYNMIS_CHECK(insv < result.new_vertices.size());
        DYNMIS_CHECK(result.new_vertices[insv] == id);
        ++insv;
        if (!update.key.empty()) keymap.Bind(update.key, id);
      } else if (update.kind == UpdateKind::kDeleteVertex) {
        if (!update.key.empty()) {
          keymap.Release(update.key);
        } else {
          keymap.ReleaseId(update.u);
        }
      }
    }
    metrics.ops_applied += static_cast<int64_t>(updates->size());
    ++metrics.repl_batches_applied;
    RecordAppliedBatch(*updates);
  }

  // Follower --follow-dir: drain whatever complete records the primary has
  // made visible. Bounded per pass so a huge backlog cannot starve reads.
  void PumpDirTail() {
    if (tail_cursor == nullptr) return;
    for (int i = 0; i < 256; ++i) {
      repl::LogBatch batch;
      bool available = false;
      std::string error;
      if (!tail_cursor->Next(&batch, &available, &error)) {
        std::fprintf(stderr,
                     "dynmis serve: change-log tail failed (%s); read-only "
                     "at seq %lld, PROMOTE to accept writes\n",
                     error.c_str(), static_cast<long long>(next_seq));
        tail_cursor.reset();
        return;
      }
      if (!available) return;
      DYNMIS_CHECK(batch.seq == next_seq);
      // Same epoch discipline as the TCP stream: never apply a record from
      // a term below one already observed; adopt a newer term (the cursor
      // follows the promoted writer's segments across the handoff).
      if (batch.epoch < epoch) {
        std::fprintf(stderr,
                     "dynmis serve: change-log tail: stale epoch %lld at "
                     "seq %lld (local epoch %lld); read-only at seq %lld, "
                     "PROMOTE to accept writes\n",
                     static_cast<long long>(batch.epoch),
                     static_cast<long long>(batch.seq),
                     static_cast<long long>(epoch),
                     static_cast<long long>(next_seq));
        tail_cursor.reset();
        return;
      }
      if (batch.epoch > epoch) AdoptEpoch(batch.epoch);
      ApplyReplBatch(&batch.updates);
    }
  }

  // ---- Online resharding ----------------------------------------------------

  void HandleReshard(Connection* conn, const Command& cmd) {
    if (read_only) {
      Respond(conn, "ERR readonly");
      return;
    }
    if (reshard != nullptr) {
      Respond(conn, "ERR reshard already in progress");
      return;
    }
    Flush(FlushReason::kBarrier);
    auto task = std::make_unique<ReshardTask>();
    task->target_shards = static_cast<int>(cmd.count);
    // Partition plan for the rebuilt backend: the optional token on the
    // RESHARD line, else whatever the current sharded backend runs (hash
    // when resharding up from the single engine).
    if (!cmd.path.empty()) {
      DYNMIS_CHECK(ParsePartitionStrategy(cmd.path, &task->partition));
    } else if (ShardedMisEngine* current = backend->Sharded()) {
      task->partition = current->options().partition;
    }
    task->base_seq = next_seq;
    std::ostringstream out;
    const SnapshotStatus status = backend->SaveSnapshot(out);
    if (!status.ok) {
      Respond(conn, "ERR reshard: " + status.message);
      return;
    }
    task->base_bytes = std::move(out).str();
    reshard = std::move(task);
    reshard->thread = std::thread([this] { ReshardWorker(); });
    std::string ack =
        "OK RESHARD started " + std::to_string(reshard->target_shards);
    if (!cmd.path.empty()) ack += " " + cmd.path;
    Respond(conn, ack);
  }

  // Worker thread: rebuild the backend at the target shard count from the
  // admission-time snapshot, then replay every batch the loop has applied
  // since. Touches only the ReshardTask (never loop state); the loop joins
  // it before reading `result`.
  void ReshardWorker() {
    ReshardTask& task = *reshard;
    const auto fail = [&task](std::string why) {
      task.error = std::move(why);
      task.failed.store(true, std::memory_order_release);
    };
    std::unique_ptr<ServingBackend> rebuilt;
    {
      std::istringstream in(task.base_bytes);
      std::string error;
      std::unique_ptr<ServingBackend> restored =
          RestoreServingBackend(in, &error);
      task.base_bytes.clear();
      task.base_bytes.shrink_to_fit();
      if (restored == nullptr) {
        fail("restore: " + error);
        return;
      }
      ShardedEngineOptions shard_options;
      shard_options.num_shards = task.target_shards;
      shard_options.partition = task.partition;
      auto engine = ShardedMisEngine::CreateFromGraph(
          restored->ExportGraph(), restored->Config(), shard_options);
      if (engine == nullptr) {
        fail("cannot build " + std::to_string(task.target_shards) +
             "-shard engine");
        return;
      }
      engine->Initialize();
      rebuilt = std::make_unique<ShardedBackend>(std::move(engine));
    }
    while (true) {
      repl::LogBatch batch;
      {
        std::unique_lock<std::mutex> lock(task.mutex);
        if (task.queue.empty()) {
          task.caught_up.store(true, std::memory_order_release);
          task.cv.wait(lock, [&task] {
            return !task.queue.empty() || task.finalize;
          });
          if (task.queue.empty() && task.finalize) break;
        }
        batch = std::move(task.queue.front());
        task.queue.pop_front();
      }
      const UpdateResult result = rebuilt->ApplyBatch(batch.updates);
      if (result.applied != static_cast<int64_t>(batch.updates.size())) {
        fail("replay diverged at seq " + std::to_string(batch.seq));
        return;
      }
    }
    task.result = std::move(rebuilt);
  }

  // Loop side of the cutover: once the worker has drained its queue at
  // least once, one barrier flush bounds what remains, the worker finishes
  // it, and the backend pointer swaps — clients never observe a gap beyond
  // that single flush.
  void CheckReshardCutover() {
    if (reshard == nullptr) return;
    if (!reshard->failed.load(std::memory_order_acquire) &&
        !reshard->caught_up.load(std::memory_order_acquire)) {
      return;
    }
    if (!reshard->failed.load(std::memory_order_acquire)) {
      Flush(FlushReason::kBarrier);
    }
    {
      std::lock_guard<std::mutex> lock(reshard->mutex);
      reshard->finalize = true;
    }
    reshard->cv.notify_all();
    reshard->thread.join();
    if (reshard->failed.load(std::memory_order_acquire) ||
        reshard->result == nullptr) {
      std::fprintf(stderr, "dynmis serve: reshard to %d shards failed: %s\n",
                   reshard->target_shards, reshard->error.c_str());
    } else {
      backend = std::move(reshard->result);
      ++metrics.repl_resharded;
      std::fprintf(stderr, "dynmis serve: resharded to %d shards at seq %lld\n",
                   reshard->target_shards, static_cast<long long>(next_seq));
    }
    reshard.reset();
  }

  // ---- Replication startup --------------------------------------------------

  bool StartReplication(std::string* error) {
    epoch = options.start_epoch;
    reconnect_rng.Seed(0x9e3779b97f4a7c15ULL ^
                       (static_cast<uint64_t>(getpid()) << 17) ^
                       static_cast<uint64_t>(bound_port));
    if (!options.change_log_dir.empty()) {
      if (!read_only) {
        // Every writer incarnation is a new term: strictly above whatever
        // the bootstrap replay saw AND whatever the directory's epoch file
        // holds, made durable before the first write can be acked. A
        // crashed-and-restarted primary therefore always outranks its own
        // torn tail, and a stale twin still probing the file fences.
        epoch = std::max(options.start_epoch,
                         repl::ReadEpochFile(options.change_log_dir)) +
                1;
        if (!repl::WriteEpochFile(options.change_log_dir, epoch, error)) {
          *error = "cannot claim epoch: " + *error;
          return false;
        }
      }
      epoch_path = options.change_log_dir + "/epoch";
      auto writer = std::make_unique<repl::ChangeLogWriter>();
      if (!writer->Open(options.change_log_dir, options.log_segment_bytes,
                        next_seq, epoch, error)) {
        return false;
      }
      log_writer = std::move(writer);
      if (options.snapshot_every_batches > 0 ||
          options.snapshot_interval_ms > 0) {
        snapshotter = std::make_unique<repl::Snapshotter>(
            options.change_log_dir);
        last_snapshot_trigger_seq = next_seq;
        last_snapshot_trigger_time = clock.ElapsedSeconds();
      }
    }
    if (!options.follow_addr.empty()) {
      sockaddr_in addr{};
      if (!ParseFollowAddr(&addr, error)) return false;  // Config error.
      std::string connect_error;
      if (!ConnectUpstream(&connect_error)) {
        // A dead primary at follower startup is an ordering hazard, not a
        // configuration one: come up read-only and keep retrying.
        std::fprintf(stderr,
                     "dynmis serve: upstream unavailable (%s); retrying "
                     "with backoff\n",
                     connect_error.c_str());
        ScheduleReconnect();
      }
      return true;
    }
    if (!options.follow_dir.empty()) {
      auto cursor = std::make_unique<repl::ChangeLogCursor>();
      if (!cursor->Open(options.follow_dir, next_seq, error)) return false;
      tail_cursor = std::move(cursor);
    }
    return true;
  }

  static constexpr const char* kFileCommandsRefused =
      "ERR file commands are disabled on non-loopback listeners "
      "(--allow-file-commands)";

  // SNAPSHOT/TRACE are a server-host file-write primitive; allow them only
  // for loopback listeners unless explicitly opted in.
  bool FileCommandsAllowed() const {
    return options.allow_file_commands ||
           options.host.rfind("127.", 0) == 0;
  }

  // ---- Stats JSON -----------------------------------------------------------

  std::string BuildStatsJson() {
    std::string out = "{";
    JsonStr(&out, "backend", backend->Kind());
    JsonInt(&out, "protocol_version", kProtocolVersion);
    JsonInt(&out, "shards", backend->NumShards());
    JsonKey(&out, "engine");
    JsonEngineStats(&out, backend->Stats());
    const std::vector<EngineStats> per_shard = backend->PerShardStats();
    if (!per_shard.empty()) {
      JsonKey(&out, "per_shard");
      out.push_back('[');
      for (size_t i = 0; i < per_shard.size(); ++i) {
        if (i > 0) out.push_back(',');
        JsonEngineStats(&out, per_shard[i]);
      }
      out.push_back(']');
    }
    if (ShardedMisEngine* engine = backend->Sharded()) {
      // Cut-edge resolver health: `resolver_backlog` (shipped ops the
      // resolver worker has not yet consumed) and `resolver_conflicts`
      // (standing conflict-set depth) are the two fields an operator
      // should watch — a backlog that grows without bound means the
      // resolver thread cannot keep up with update ingest.
      const ShardedStats sharded = engine->ShardStats();
      JsonKey(&out, "sharded");
      out.push_back('{');
      JsonStr(&out, "partition", sharded.partition);
      JsonInt(&out, "intra_edges", sharded.intra_edges);
      JsonInt(&out, "cut_edges", sharded.cut_edges);
      JsonDouble(&out, "cut_edge_fraction", sharded.cut_edge_fraction);
      JsonInt(&out, "barriers", sharded.barriers);
      JsonInt(&out, "conflicts", sharded.conflicts);
      JsonInt(&out, "evictions", sharded.evictions);
      JsonInt(&out, "readded", sharded.readded);
      JsonInt(&out, "swaps", sharded.swaps);
      JsonDouble(&out, "resolve_seconds", sharded.resolve_seconds);
      JsonInt(&out, "async_resolver", sharded.async_resolver ? 1 : 0);
      JsonInt(&out, "resolver_backlog", sharded.resolver_backlog);
      JsonInt(&out, "resolver_conflicts", sharded.resolver_conflicts);
      JsonInt(&out, "transitions_consumed", sharded.transitions_consumed);
      out.push_back('}');
    }
    JsonKey(&out, "serving");
    out.push_back('{');
    JsonInt(&out, "connections_open",
            static_cast<int64_t>(connections.size()));
    JsonInt(&out, "connections_accepted", metrics.connections_accepted);
    JsonInt(&out, "protocol_errors", metrics.protocol_errors);
    JsonInt(&out, "ops_admitted", metrics.ops_admitted);
    JsonInt(&out, "ops_applied", metrics.ops_applied);
    JsonInt(&out, "ops_rejected", metrics.ops_rejected);
    JsonInt(&out, "batches_flushed", metrics.batches_flushed);
    JsonDouble(&out, "mean_batch_occupancy", metrics.MeanBatchOccupancy());
    JsonInt(&out, "flushes_full", metrics.flushes_full);
    JsonInt(&out, "flushes_deadline", metrics.flushes_deadline);
    JsonInt(&out, "flushes_barrier", metrics.flushes_barrier);
    JsonInt(&out, "keymap_entries", static_cast<int64_t>(keymap.Size()));
    JsonInt(&out, "window_edges",
            window_wheel != nullptr
                ? static_cast<int64_t>(window_wheel->scheduled())
                : 0);
    JsonInt(&out, "expired_ops", expired_ops);
    const double uptime = clock.ElapsedSeconds();
    JsonDouble(&out, "uptime_seconds", uptime);
    JsonDouble(&out, "ops_per_sec",
               uptime > 0 ? static_cast<double>(metrics.ops_applied) / uptime
                          : 0);
    JsonKey(&out, "update_latency_us");
    out.push_back('{');
    JsonInt(&out, "count", metrics.update_latency.count());
    JsonDouble(&out, "p50", metrics.update_latency.PercentileUs(0.50));
    JsonDouble(&out, "p99", metrics.update_latency.PercentileUs(0.99));
    out.push_back('}');
    JsonKey(&out, "query_latency_us");
    out.push_back('{');
    JsonInt(&out, "count", metrics.query_latency.count());
    JsonDouble(&out, "p50", metrics.query_latency.PercentileUs(0.50));
    JsonDouble(&out, "p99", metrics.query_latency.PercentileUs(0.99));
    out.push_back('}');
    JsonKey(&out, "commands");
    out.push_back('{');
    for (int i = 0; i < kNumVerbs; ++i) {
      JsonInt(&out, VerbName(static_cast<Verb>(i)), metrics.commands[i]);
    }
    out.push_back('}');
    out.push_back('}');
    JsonKey(&out, "io");
    out.push_back('{');
    JsonInt(&out, "threads", static_cast<int64_t>(io_threads.size()));
    JsonKey(&out, "per_thread");
    out.push_back('[');
    for (size_t t = 0; t < io_threads.size(); ++t) {
      if (t > 0) out.push_back(',');
      const IoMetrics m = io_threads[t]->MetricsCopy();
      out.push_back('{');
      JsonInt(&out, "wakeups", m.wakeups);
      JsonInt(&out, "frames_decoded", m.frames_decoded);
      JsonInt(&out, "bytes_read", m.bytes_read);
      JsonInt(&out, "bytes_written", m.bytes_written);
      JsonInt(&out, "decode_errors", m.decode_errors);
      JsonInt(&out, "connections", m.connections);
      JsonInt(&out, "inbox_depth_high_water", m.inbox_depth_high_water);
      JsonKey(&out, "decode_latency_us");
      out.push_back('{');
      for (int v = 0; v < kNumVerbs; ++v) {
        const LatencyRecorder& rec = m.decode_latency[v];
        if (rec.count() == 0) continue;
        JsonKey(&out, VerbName(static_cast<Verb>(v)));
        out.push_back('{');
        JsonInt(&out, "count", rec.count());
        JsonDouble(&out, "p50", rec.PercentileUs(0.50));
        JsonDouble(&out, "p99", rec.PercentileUs(0.99));
        out.push_back('}');
      }
      out.push_back('}');
      out.push_back('}');
    }
    out.push_back(']');
    out.push_back('}');
    JsonKey(&out, "replication");
    out.push_back('{');
    JsonStr(&out, "role",
            fenced ? "fenced" : (read_only ? "follower" : "primary"));
    JsonInt(&out, "epoch", epoch);
    JsonInt(&out, "fenced", fenced ? 1 : 0);
    JsonInt(&out, "degraded", degraded ? 1 : 0);
    JsonStr(&out, "degraded_reason", degraded_reason);
    JsonInt(&out, "reconnects", metrics.repl_reconnects);
    JsonInt(&out, "next_seq", next_seq);
    JsonInt(&out, "batches_logged", metrics.repl_batches_logged);
    JsonInt(&out, "ops_logged", metrics.repl_ops_logged);
    JsonInt(&out, "segments",
            log_writer != nullptr ? log_writer->segments_created() : 0);
    JsonInt(&out, "batches_streamed", metrics.repl_batches_streamed);
    JsonInt(&out, "batches_applied", metrics.repl_batches_applied);
    JsonInt(&out, "snapshots_written",
            snapshotter != nullptr ? snapshotter->snapshots_written() : 0);
    JsonInt(&out, "snapshots_failed",
            snapshotter != nullptr ? snapshotter->snapshots_failed() : 0);
    JsonInt(&out, "last_base_seq",
            snapshotter != nullptr ? snapshotter->last_base_seq() : -1);
    JsonInt(&out, "subscribers", CountSubscribers());
    // Lag: how far the slowest consumer trails this server's head. On a
    // primary that is the slowest catching-up subscriber; on a follower,
    // the last head the upstream announced minus what has applied locally.
    int64_t lag_batches = 0;
    int64_t lag_segments = 0;
    for (const auto& [session, conn] : connections) {
      if (!conn.subscriber || conn.sub_live || conn.sub_cursor == nullptr) {
        continue;
      }
      lag_batches =
          std::max(lag_batches, next_seq - conn.sub_cursor->next_seq());
      if (log_writer != nullptr) {
        int64_t behind = 0;
        for (const int64_t start : log_writer->segment_starts()) {
          if (start > conn.sub_cursor->segment_first_seq()) ++behind;
        }
        lag_segments = std::max(lag_segments, behind);
      }
    }
    if (read_only && upstream_head >= 0) {
      lag_batches = std::max(lag_batches, upstream_head - next_seq);
    }
    // Ops are estimated from mean applied-batch occupancy: the log records
    // batches, so exact trailing op counts would mean re-reading it.
    const int64_t batches_seen =
        metrics.batches_flushed + metrics.repl_batches_applied;
    const double mean_ops =
        batches_seen > 0
            ? static_cast<double>(metrics.ops_applied) /
                  static_cast<double>(batches_seen)
            : 0;
    JsonInt(&out, "lag_batches", lag_batches);
    JsonDouble(&out, "lag_ops_estimate",
               static_cast<double>(lag_batches) * mean_ops);
    JsonInt(&out, "lag_segments", lag_segments);
    JsonInt(&out, "promotions", metrics.repl_promotions);
    JsonInt(&out, "resharded", metrics.repl_resharded);
    JsonInt(&out, "reshard_in_progress", reshard != nullptr ? 1 : 0);
    out.push_back('}');
    out.push_back('}');
    return out;
  }

  int64_t CountSubscribers() const {
    int64_t n = 0;
    for (const auto& [session, conn] : connections) {
      if (conn.subscriber) ++n;
    }
    return n;
  }

  bool HasCatchingUpSubscriber() const {
    for (const auto& [session, conn] : connections) {
      if (conn.subscriber && !conn.sub_live) return true;
    }
    return false;
  }

  std::string StatsJson() { return BuildStatsJson(); }

  // ---- Socket plumbing ------------------------------------------------------

  bool StartListening(std::string* error) {
    listen_fd = socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    const int one = 1;
    setsockopt(listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(options.port));
    if (inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
      *error = "bad listen address: " + options.host;
      return false;
    }
    if (bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      *error = std::string("bind: ") + std::strerror(errno);
      return false;
    }
    if (listen(listen_fd, 128) != 0) {
      *error = std::string("listen: ") + std::strerror(errno);
      return false;
    }
    socklen_t len = sizeof(addr);
    if (getsockname(listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) !=
        0) {
      *error = std::string("getsockname: ") + std::strerror(errno);
      return false;
    }
    bound_port = ntohs(addr.sin_port);
    if (!SetNonBlocking(listen_fd)) {
      *error = "cannot set listen socket non-blocking";
      return false;
    }
    epoll_fd = epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd < 0) {
      *error = std::string("epoll_create1: ") + std::strerror(errno);
      return false;
    }
    wake_fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (wake_fd < 0) {
      *error = std::string("eventfd: ") + std::strerror(errno);
      return false;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kEngineWakeTag;
    if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, wake_fd, &ev) != 0) {
      *error = std::string("epoll_ctl: ") + std::strerror(errno);
      return false;
    }
    ev.events = EPOLLIN;
    ev.data.u64 = kEngineListenTag;
    if (epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev) != 0) {
      *error = std::string("epoll_ctl: ") + std::strerror(errno);
      return false;
    }
    return true;
  }

  void MuteListener() {
    if (listener_muted) return;
    // Out of descriptors: the queued connection stays on the backlog and
    // level-triggered epoll would re-report it forever. Leave the epoll set
    // and rejoin once the backoff deadline passes.
    epoll_ctl(epoll_fd, EPOLL_CTL_DEL, listen_fd, nullptr);
    listener_muted = true;
    accept_mute_until = clock.ElapsedSeconds() + 0.1;
  }

  void MaybeUnmuteListener() {
    if (!listener_muted || clock.ElapsedSeconds() < accept_mute_until) return;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kEngineListenTag;
    epoll_ctl(epoll_fd, EPOLL_CTL_ADD, listen_fd, &ev);
    listener_muted = false;
  }

  void Accept() {
    for (;;) {
      const int fd = accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EMFILE || errno == ENFILE) MuteListener();
        return;  // EAGAIN (or transient error): back to epoll.
      }
      if (static_cast<int>(connections.size()) >= options.max_connections) {
        const char* msg = "ERR server full\n";
        (void)!write(fd, msg, std::strlen(msg));
        close(fd);
        continue;
      }
      SetNonBlocking(fd);
      const int one = 1;
      setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      const int64_t session = next_session++;
      Connection& conn = connections[session];
      conn.session = session;
      conn.io_thread = next_io_thread;
      next_io_thread = (next_io_thread + 1) % static_cast<int>(io_threads.size());
      // Hand the socket to its I/O thread; from here the engine only ever
      // sees this fd through the session's mailboxes.
      io_threads[conn.io_thread]->orders().Produce([&](IoOrder* o) {
        o->kind = IoOrderKind::kAdopt;
        o->session = session;
        o->fd = fd;
        o->bytes.clear();
        o->pending_out = conn.pending_out;
      });
      kick_needed[conn.io_thread] = 1;
      ++metrics.connections_accepted;
    }
  }

  // Drains every I/O thread's inbox and applies the events in arrival
  // order. Commands run the same admission path the old in-loop parser fed;
  // lifecycle events map onto the winding-down machinery.
  void ProcessIoEvents() {
    for (size_t t = 0; t < io_threads.size(); ++t) {
      std::vector<IoEvent>* events = nullptr;
      const size_t n = io_threads[t]->inbox().Drain(&events);
      for (size_t i = 0; i < n; ++i) {
        IoEvent& ev = (*events)[i];
        auto it = connections.find(ev.session);
        if (it == connections.end()) continue;  // Already torn down.
        Connection& conn = it->second;
        switch (ev.kind) {
          case IoEventKind::kCommand:
            // A winding-down connection (QUIT acked, protocol error) gets
            // no further commands executed.
            if (!conn.close_after_write) HandleCommand(&conn, ev.cmd);
            break;
          case IoEventKind::kBadLine:
            HandleBadLine(&conn, ev.error);
            break;
          case IoEventKind::kFatal:
            HandleFatal(&conn, ev.error);
            break;
          case IoEventKind::kEof:
            // Orderly peer close; answer what was received, then close.
            conn.close_after_write = true;
            MarkDirty(&conn);
            break;
          case IoEventKind::kClosed:
            connections.erase(it);  // Socket already gone on the I/O side.
            break;
        }
      }
    }
  }

  // Ships every dirty connection's staged bytes and lifecycle transitions
  // to its I/O thread as orders, then kicks each thread that got any (and
  // un-parks inboxes that hit their high-water mark). Runs once per loop
  // pass, so N responses staged in one pass cost one order + one wakeup.
  void ShipOutput() {
    for (const int64_t session : dirty_sessions) {
      auto it = connections.find(session);
      if (it == connections.end()) continue;
      Connection& conn = it->second;
      conn.dirty = false;
      IoThread& io = *io_threads[conn.io_thread];
      if (conn.overloaded) {
        ++metrics.protocol_errors;
        io.orders().Produce([&](IoOrder* o) {
          o->kind = IoOrderKind::kCloseNow;
          o->session = session;
          o->fd = -1;
          o->bytes.clear();
          o->pending_out.reset();
        });
        kick_needed[conn.io_thread] = 1;
        connections.erase(it);
        continue;
      }
      if (!conn.staged.empty()) {
        conn.pending_out->fetch_add(static_cast<int64_t>(conn.staged.size()),
                                    std::memory_order_relaxed);
        io.orders().Produce([&](IoOrder* o) {
          o->kind = IoOrderKind::kAppend;
          o->session = session;
          o->fd = -1;
          o->bytes.assign(conn.staged);  // Slot string keeps its capacity.
          o->pending_out.reset();
        });
        conn.staged.clear();
        kick_needed[conn.io_thread] = 1;
      }
      if (conn.close_after_write && !conn.close_order_sent &&
          conn.responses.empty()) {
        conn.close_order_sent = true;
        io.orders().Produce([&](IoOrder* o) {
          o->kind = IoOrderKind::kCloseAfterWrite;
          o->session = session;
          o->fd = -1;
          o->bytes.clear();
          o->pending_out.reset();
        });
        kick_needed[conn.io_thread] = 1;
      }
    }
    dirty_sessions.clear();
    for (size_t t = 0; t < io_threads.size(); ++t) {
      if (io_threads[t]->paused()) {
        // Its inbox has been drained (ProcessIoEvents runs first); re-arm
        // reads.
        io_threads[t]->orders().Produce([](IoOrder* o) {
          o->kind = IoOrderKind::kResume;
          o->session = 0;
          o->fd = -1;
          o->bytes.clear();
          o->pending_out.reset();
        });
        kick_needed[t] = 1;
      }
      if (kick_needed[t]) {
        io_threads[t]->Kick();
        kick_needed[t] = 0;
      }
    }
  }

  bool StartIoThreads(std::string* error) {
    const int n = std::max(1, options.io_threads);
    io_threads.reserve(static_cast<size_t>(n));
    for (int t = 0; t < n; ++t) {
      IoThreadOptions io_options;
      io_options.index = t;
      io_options.max_line_bytes = options.max_line_bytes;
      io_options.engine_wake_fd = wake_fd;
      auto io = std::make_unique<IoThread>(io_options);
      if (!io->Start(error)) {
        StopIoThreads();
        return false;
      }
      io_threads.push_back(std::move(io));
    }
    kick_needed.assign(io_threads.size(), 0);
    return true;
  }

  // Asks every I/O thread to flush its remaining output (EPOLLOUT-driven,
  // deadline-bounded inside the thread — no polling re-check loop here)
  // and joins them.
  void StopIoThreads() {
    for (auto& io : io_threads) {
      io->orders().Produce([](IoOrder* o) {
        o->kind = IoOrderKind::kDrain;
        o->session = 0;
        o->fd = -1;
        o->bytes.clear();
        o->pending_out.reset();
      });
      io->Kick();
    }
    for (auto& io : io_threads) io->Join();
    // Keep the final counters readable after the threads are gone (tests
    // and operators inspect MetricsSnapshot() post-shutdown).
    io_metrics_final.clear();
    for (auto& io : io_threads) io_metrics_final.push_back(io->MetricsCopy());
    io_threads.clear();
  }

  int RunLoop() {
    std::string io_error;
    if (!StartIoThreads(&io_error)) {
      std::fprintf(stderr, "dynmis serve: %s\n", io_error.c_str());
      return 1;
    }
    epoll_event events[16];
    while (true) {
      if (stopping) break;

      // Block until traffic — or the pending batch's flush deadline.
      int timeout_ms = -1;
      const auto tighten = [&timeout_ms](int ms) {
        timeout_ms = timeout_ms < 0 ? ms : std::min(timeout_ms, ms);
      };
      if (!pending_meta.empty()) {
        const double deadline = pending_meta.front().enqueue_time +
                                options.flush_deadline_us * 1e-6;
        const double remaining = deadline - clock.ElapsedSeconds();
        tighten(remaining <= 0 ? 0 : static_cast<int>(remaining * 1e3) + 1);
      }
      if (listener_muted) {
        // The muted listener must not turn into an indefinite block: keep
        // ticking so the backoff expires and accepting resumes.
        tighten(50);
      }
      if (tail_cursor != nullptr || reshard != nullptr ||
          HasCatchingUpSubscriber()) {
        // Progress on these comes from disk or a worker thread, not socket
        // readiness; keep ticking to notice it.
        tighten(50);
      }
      if (degraded) tighten(50);  // Change-log retry tick.
      if (window_wheel != nullptr && !read_only && !fenced &&
          window_wheel->scheduled() > 0) {
        // TTL expiries are clock-driven; tick at a few ms so the window
        // tracks wall time even on an otherwise idle server.
        tighten(5);
      }
      if (reconnect_at >= 0) {
        const double remaining = reconnect_at - clock.ElapsedSeconds();
        tighten(remaining <= 0 ? 0 : static_cast<int>(remaining * 1e3) + 1);
      }
      if (!epoch_path.empty() && !fenced) {
        // Idle fencing probe: without traffic no Flush runs, so keep
        // ticking coarsely to notice a new primary's epoch claim.
        tighten(500);
      }
      const int ready = epoll_wait(epoll_fd, events, 16, timeout_ms);
      if (ready < 0 && errno != EINTR) {
        Drain();
        return 1;
      }

      bool listener_ready = false;
      bool upstream_ready = false;
      for (int i = 0; i < std::max(ready, 0); ++i) {
        switch (events[i].data.u64) {
          case kEngineWakeTag: {
            uint64_t drain = 0;
            (void)!read(wake_fd, &drain, sizeof(drain));
            break;
          }
          case kEngineListenTag:
            listener_ready = true;
            break;
          case kEngineUpstreamTag:
            upstream_ready = true;
            break;
        }
      }

      if (promote_requested.exchange(false)) {
        Flush(FlushReason::kBarrier);
        DoPromote();
      }
      ProcessIoEvents();
      AdvanceWindow();
      if (!pending_meta.empty() &&
          clock.ElapsedSeconds() - pending_meta.front().enqueue_time >=
              options.flush_deadline_us * 1e-6) {
        Flush(FlushReason::kDeadline);
      }
      if (upstream_ready && upstream_fd >= 0) ReadUpstream();
      MaybeReconnectUpstream();
      PumpDirTail();
      PumpSubscribers();
      RetryDegradedLog();
      if (!epoch_path.empty() && !fenced &&
          clock.ElapsedSeconds() >= next_epoch_check) {
        CheckEpochFile();
        next_epoch_check = clock.ElapsedSeconds() + 0.5;
      }
      CheckReshardCutover();
      if (listener_ready) Accept();
      MaybeUnmuteListener();
      ShipOutput();
    }
    Drain();
    return 0;
  }

  // Clean shutdown: apply the in-flight batch, ship the resulting acks (and
  // any other staged bytes) to the I/O threads, then have them flush and
  // close everything under their drain deadline.
  void Drain() {
    Flush(FlushReason::kBarrier);
    ShipOutput();
    StopIoThreads();
    connections.clear();

    // Replication teardown. The final barrier flush above already logged
    // the in-flight batch; fsync so a SIGTERM-initiated exit leaves a log
    // that survives the host going down too.
    if (reshard != nullptr) {
      {
        std::lock_guard<std::mutex> lock(reshard->mutex);
        reshard->finalize = true;
      }
      reshard->cv.notify_all();
      reshard->thread.join();
      reshard.reset();  // Mid-flight result is discarded; shutdown wins.
    }
    if (log_writer != nullptr) {
      std::string error;
      if (!log_writer->Sync(&error)) {
        std::fprintf(stderr, "dynmis serve: change-log sync failed: %s\n",
                     error.c_str());
      }
    }
    if (snapshotter != nullptr) snapshotter->WaitIdle();
    CloseUpstream();
  }

  ~Impl() {
    // Connection sockets are owned (and closed) by the I/O threads.
    if (listen_fd >= 0) close(listen_fd);
    if (epoll_fd >= 0) close(epoll_fd);
    if (wake_fd >= 0) close(wake_fd);
    if (upstream_fd >= 0) close(upstream_fd);
  }
};

Server::Server(std::unique_ptr<ServingBackend> backend, ServeOptions options)
    : impl_(std::make_unique<Impl>()) {
  impl_->backend = std::move(backend);
  impl_->options = std::move(options);
  impl_->replica = impl_->backend->ExportGraph();
  impl_->read_only = !impl_->options.follow_addr.empty() ||
                     !impl_->options.follow_dir.empty();
  impl_->next_seq = impl_->options.repl_start_seq;
  impl_->last_snapshot_trigger_seq = impl_->next_seq;
  if (impl_->options.window_ttl_ms > 0) {
    impl_->window_wheel = std::make_unique<ingest::TimingWheel>(
        static_cast<uint32_t>(impl_->options.window_ttl_ms));
  }
  // Warm restart: the snapshot the backend was restored from may carry a
  // "keymap" section (SaveServerSnapshot writes one); reload the bindings
  // so keyed clients survive the restart. AdoptKeyMap overrides this for
  // the replication bootstrap path.
  if (!impl_->options.restore_path.empty()) {
    std::ifstream in(impl_->options.restore_path, std::ios::binary);
    SnapshotReader reader;
    if (in && reader.ReadFrom(in).ok && reader.HasSection("keymap")) {
      if (!impl_->keymap.LoadFrom(&reader)) {
        std::fprintf(stderr,
                     "dynmis serve: keymap restore failed: %s (starting "
                     "with no key bindings)\n",
                     reader.status().message.c_str());
        impl_->keymap = ingest::KeyMap();
      }
    }
  }
}

Server::~Server() = default;

bool Server::Start(std::string* error) {
  if (!impl_->StartListening(error)) return false;
  return impl_->StartReplication(error);
}

int Server::port() const { return impl_->bound_port; }

int Server::Run() { return impl_->RunLoop(); }

void Server::Stop() {
  impl_->stopping = true;
  // write() on an eventfd is async-signal-safe, so this is callable from
  // the SIGINT/SIGTERM handlers.
  if (impl_->wake_fd >= 0) WriteWakeEventFd(impl_->wake_fd);
}

const DynamicGraph& Server::replica_graph() const { return impl_->replica; }

const ingest::KeyMap& Server::key_map() const { return impl_->keymap; }

void Server::AdoptKeyMap(ingest::KeyMap keymap) {
  impl_->keymap = std::move(keymap);
}

std::string Server::StatsJson() { return impl_->StatsJson(); }

ServingMetricsSnapshot Server::MetricsSnapshot() const {
  const ServeMetrics& m = impl_->metrics;
  ServingMetricsSnapshot snap;
  snap.connections_accepted = m.connections_accepted;
  snap.connections_open = static_cast<int64_t>(impl_->connections.size());
  snap.protocol_errors = m.protocol_errors;
  snap.ops_admitted = m.ops_admitted;
  snap.ops_applied = m.ops_applied;
  snap.ops_rejected = m.ops_rejected;
  snap.batches_flushed = m.batches_flushed;
  snap.mean_batch_occupancy = m.MeanBatchOccupancy();
  snap.flushes_full = m.flushes_full;
  snap.flushes_deadline = m.flushes_deadline;
  snap.flushes_barrier = m.flushes_barrier;
  snap.keymap_entries = static_cast<int64_t>(impl_->keymap.Size());
  snap.window_edges =
      impl_->window_wheel != nullptr
          ? static_cast<int64_t>(impl_->window_wheel->scheduled())
          : 0;
  snap.expired_ops = impl_->expired_ops;
  snap.uptime_seconds = impl_->clock.ElapsedSeconds();
  snap.ops_per_sec =
      snap.uptime_seconds > 0
          ? static_cast<double>(m.ops_applied) / snap.uptime_seconds
          : 0;
  snap.update_p50_us = m.update_latency.PercentileUs(0.50);
  snap.update_p99_us = m.update_latency.PercentileUs(0.99);
  snap.query_p50_us = m.query_latency.PercentileUs(0.50);
  snap.query_p99_us = m.query_latency.PercentileUs(0.99);
  snap.repl_role = impl_->fenced ? "fenced"
                                 : (impl_->read_only ? "follower" : "primary");
  snap.repl_next_seq = impl_->next_seq;
  snap.repl_epoch = impl_->epoch;
  snap.repl_fenced = impl_->fenced ? 1 : 0;
  snap.repl_reconnects = m.repl_reconnects;
  snap.degraded_reason = impl_->degraded_reason;
  snap.repl_ops_logged = m.repl_ops_logged;
  snap.repl_segments = impl_->log_writer != nullptr
                           ? impl_->log_writer->segments_created()
                           : 0;
  snap.repl_snapshots_written = impl_->snapshotter != nullptr
                                    ? impl_->snapshotter->snapshots_written()
                                    : 0;
  snap.repl_snapshots_failed = impl_->snapshotter != nullptr
                                   ? impl_->snapshotter->snapshots_failed()
                                   : 0;
  snap.repl_last_base_seq = impl_->snapshotter != nullptr
                                ? impl_->snapshotter->last_base_seq()
                                : -1;
  snap.repl_subscribers = impl_->CountSubscribers();
  snap.repl_promotions = m.repl_promotions;
  snap.repl_resharded = m.repl_resharded;
  // Live per-thread counters while running; the final copies captured at
  // shutdown afterwards.
  std::vector<IoMetrics> io_all;
  for (const auto& io : impl_->io_threads) io_all.push_back(io->MetricsCopy());
  if (io_all.empty()) io_all = impl_->io_metrics_final;
  snap.io_threads = static_cast<int64_t>(io_all.size());
  for (const IoMetrics& io_metrics : io_all) {
    snap.io_wakeups += io_metrics.wakeups;
    snap.io_frames_decoded += io_metrics.frames_decoded;
    snap.io_inbox_depth_high_water = std::max(
        snap.io_inbox_depth_high_water, io_metrics.inbox_depth_high_water);
  }
  return snap;
}

void Server::RequestPromote() {
  impl_->promote_requested.store(true);
  if (impl_->wake_fd >= 0) WriteWakeEventFd(impl_->wake_fd);
}

ServingBackend& Server::backend() { return *impl_->backend; }

namespace {
Server* g_signal_server = nullptr;
void HandleStopSignal(int) {
  if (g_signal_server != nullptr) g_signal_server->Stop();
}
void HandlePromoteSignal(int) {
  if (g_signal_server != nullptr) g_signal_server->RequestPromote();
}
}  // namespace

void Server::InstallSignalHandlers(Server* server) {
  g_signal_server = server;
  struct sigaction action{};
  action.sa_handler = HandleStopSignal;
  sigemptyset(&action.sa_mask);
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);
  action.sa_handler = HandlePromoteSignal;
  sigaction(SIGUSR1, &action, nullptr);
}

}  // namespace serve
}  // namespace dynmis
