// Binary framing for the serving protocol, negotiated with `HELLO 2 BIN`
// (the text protocol stays the default and the debugging interface).
//
// Every frame is [u32 length (LE)][u8 code][body]; `length` counts the code
// byte plus the body. Integers in bodies are fixed-width little-endian u32.
// Request codes cover exactly the update/query verbs — control verbs
// (STATS, SNAPSHOT, REPL, ...) stay text-only, issued before the upgrade or
// on a separate text connection:
//
//   code  body                                     text equivalent
//   0x01  u v                                      INS u v
//   0x02  u v                                      DEL u v
//   0x03  n, n neighbor ids                        INSV n1 ... nn
//   0x04  u                                        DELV u
//   0x05  count, then count nested [u8 op][body]   BATCH count ... END
//         records with op in {0x01..0x04, 0x07, 0x08}
//   0x06  u                                        QUERY u
//   0x07  klen, klen key bytes, n, n neighbor ids  KINS key n1 ... nn
//   0x08  klen, klen key bytes                     KDEL key
//   0x09  klen, klen key bytes                     KQUERY key
//
// Response codes (one response frame per request frame; a BATCH is acked as
// one frame, so a pipelining client pays no per-op round trips):
//
//   0x80  -                                        OK
//   0x81  id                                       OK <id>        (INSV)
//   0x82  reason bytes                             ERR rejected: ...
//   0x83  applied, rejected, n, n insert ids       OK a r id...   (BATCH)
//   0x84  u8 in_solution                           OK 1 / OK 0    (QUERY)
//   0x85  message bytes                            ERR ... (fatal; closes)
//   0x86  id, u8 in_solution                       OK <id> 0/1    (KQUERY)
//
// Malformed input (bad code, truncated body, trailing bytes, oversized
// length prefix) is a clean protocol error — the decoder reports it and the
// server closes the connection; nothing is ever half-applied.
// Unit-tested in tests/serve_protocol_test.cc.

#ifndef DYNMIS_SRC_SERVE_BINARY_H_
#define DYNMIS_SRC_SERVE_BINARY_H_

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/serve/protocol.h"

namespace dynmis {
namespace serve {

inline constexpr uint8_t kBinOpIns = 0x01;
inline constexpr uint8_t kBinOpDel = 0x02;
inline constexpr uint8_t kBinOpInsV = 0x03;
inline constexpr uint8_t kBinOpDelV = 0x04;
inline constexpr uint8_t kBinOpBatch = 0x05;
inline constexpr uint8_t kBinOpQuery = 0x06;
inline constexpr uint8_t kBinOpKIns = 0x07;
inline constexpr uint8_t kBinOpKDel = 0x08;
inline constexpr uint8_t kBinOpKQuery = 0x09;

inline constexpr uint8_t kBinRespOk = 0x80;
inline constexpr uint8_t kBinRespOkId = 0x81;
inline constexpr uint8_t kBinRespReject = 0x82;
inline constexpr uint8_t kBinRespBatch = 0x83;
inline constexpr uint8_t kBinRespQuery = 0x84;
inline constexpr uint8_t kBinRespErr = 0x85;
inline constexpr uint8_t kBinRespKQuery = 0x86;

// Same cap as text BATCH.
inline constexpr int64_t kBinMaxBatchOps = 1 << 20;

// --- Encoding (append-only; reused output strings never re-allocate) ---------

void AppendU32(std::string* out, uint32_t v);
// [len][code] for a frame whose body is `body_bytes` long.
void AppendFrameHeader(std::string* out, uint8_t code, size_t body_bytes);

// Request encoders (client side: loadgen, tests, follower tooling).
void AppendInsFrame(std::string* out, VertexId u, VertexId v);
void AppendDelFrame(std::string* out, VertexId u, VertexId v);
void AppendInsVFrame(std::string* out, const std::vector<VertexId>& neighbors);
void AppendDelVFrame(std::string* out, VertexId u);
void AppendQueryFrame(std::string* out, VertexId u);
void AppendKInsFrame(std::string* out, std::string_view key,
                     const std::vector<VertexId>& neighbors);
void AppendKDelFrame(std::string* out, std::string_view key);
void AppendKQueryFrame(std::string* out, std::string_view key);
// One BATCH frame holding all of `updates` (acked as a unit).
void AppendBatchFrame(std::string* out, const std::vector<GraphUpdate>& updates,
                      size_t first, size_t count);
// Renders `update` as the matching single-op frame.
void AppendUpdateFrame(std::string* out, const GraphUpdate& update);

// Response encoders (server side; all O(body) appends).
void AppendOkResponse(std::string* out);
void AppendOkIdResponse(std::string* out, VertexId id);
void AppendRejectResponse(std::string* out, std::string_view reason);
void AppendBatchAckResponse(std::string* out, int64_t applied, int64_t rejected,
                            const std::vector<VertexId>& insert_ids);
void AppendQueryResponse(std::string* out, bool in_solution);
void AppendKQueryResponse(std::string* out, VertexId id, bool in_solution);
void AppendErrResponse(std::string* out, std::string_view message);

// --- Incremental framing over a byte stream ----------------------------------

// The binary analogue of LineBuffer: Append() raw reads, NextFrame() yields
// complete frame payloads (code byte + body) in order. A length prefix
// larger than max_frame_bytes (or zero) trips the sticky overflowed() state.
class BinaryFrameBuffer {
 public:
  explicit BinaryFrameBuffer(size_t max_frame_bytes)
      : max_frame_bytes_(max_frame_bytes) {}

  void Append(const char* data, size_t n);

  // The next complete frame payload, or nullopt. The view is valid until
  // the next Append().
  std::optional<std::string_view> NextFrame();

  bool overflowed() const { return overflowed_; }
  size_t pending_bytes() const { return buffer_.size() - consumed_; }

 private:
  size_t max_frame_bytes_;
  std::string buffer_;
  size_t consumed_ = 0;
  bool overflowed_ = false;
};

// --- Request decoding ---------------------------------------------------------

// Streaming decoder over one request frame payload. Begin() validates the
// code; Next() then yields the frame's commands one at a time into a reused
// Command — a single-op frame yields one command, a BATCH frame yields
// kBatch, its `count` update commands, then kEnd, exactly the sequence the
// text protocol's admission path consumes. Any malformed byte fails the
// whole frame (the server treats that as fatal for the connection).
class RequestFrameDecoder {
 public:
  // `payload` must stay valid across the Next() calls of this frame.
  bool Begin(std::string_view payload, std::string* error);

  enum class Step { kCommand, kDone, kError };
  Step Next(Command* cmd, std::string* error);

 private:
  enum class State { kSingle, kBatchHeader, kBatchOps, kBatchEnd, kDone };
  bool DecodeOp(uint8_t code, Command* cmd, std::string* error);
  bool TakeU32(uint32_t* v);
  bool TakeVertex(VertexId* v, std::string* error, const char* what);
  bool TakeKey(std::string* key, std::string* error);

  std::string_view body_;
  size_t pos_ = 0;
  State state_ = State::kDone;
  uint8_t code_ = 0;
  int64_t batch_left_ = 0;
};

// --- Response decoding (client side) -----------------------------------------

struct BinaryResponse {
  uint8_t code = 0;
  VertexId id = kInvalidVertex;       // kBinRespOkId / kBinRespKQuery
  int64_t applied = 0;                // kBinRespBatch
  int64_t rejected = 0;               // kBinRespBatch
  std::vector<VertexId> insert_ids;   // kBinRespBatch
  bool in_solution = false;           // kBinRespQuery / kBinRespKQuery
  std::string message;                // kBinRespReject / kBinRespErr
};

bool DecodeResponseFrame(std::string_view payload, BinaryResponse* out,
                         std::string* error);

}  // namespace serve
}  // namespace dynmis

#endif  // DYNMIS_SRC_SERVE_BINARY_H_
