// One serving I/O thread: an epoll loop that owns a share of the client
// sockets, decodes their input (newline text or length-prefixed binary —
// the thread flips a connection's decoder the moment it sees `HELLO 2
// BIN`, so pipelined binary frames in the same packet parse correctly),
// and exchanges work with the engine thread through two SPSC mailboxes:
//
//   inbox   (this thread -> engine): parsed commands + lifecycle events
//   orders  (engine -> this thread): adopt socket / append output / close
//
// Wakeups in both directions are eventfd-based. Per-connection order is
// end-to-end FIFO: a connection lives on exactly one I/O thread and both
// mailboxes preserve order. Backpressure is two-sided — the engine's
// per-connection pending-output counter (shared atomic) bounds buffered
// responses, and when this thread's inbox to the engine exceeds the
// high-water mark it parks all reads (EPOLLIN disarmed) until the engine
// drains and sends kResume, so neither side buffers unboundedly.
//
// The engine thread never touches these sockets; it only produces orders.
// On kDrain the thread flushes remaining output EPOLLOUT-driven under a
// hard deadline — no polling re-check loop — then closes everything and
// exits.

#ifndef DYNMIS_SRC_SERVE_IO_THREAD_H_
#define DYNMIS_SRC_SERVE_IO_THREAD_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/serve/binary.h"
#include "src/serve/mailbox.h"
#include "src/serve/metrics.h"
#include "src/serve/protocol.h"
#include "src/util/timer.h"

namespace dynmis {
namespace serve {

// Input event from an I/O thread to the engine thread.
enum class IoEventKind {
  kCommand,  // A parsed command.
  kBadLine,  // Unparseable text line (`error` says why). Recoverable.
  kFatal,    // Protocol-fatal input (overflow, bad frame): reply + close.
  kEof,      // Peer half-closed; answer what was received, then close.
  kClosed,   // Socket gone (error, or a requested close completed).
};
struct IoEvent {
  IoEventKind kind = IoEventKind::kCommand;
  int64_t session = 0;
  Command cmd;
  std::string error;
};

// Order from the engine thread to an I/O thread.
enum class IoOrderKind {
  kAdopt,            // Take ownership of a freshly accepted socket.
  kAppend,           // Queue response bytes on a connection.
  kCloseAfterWrite,  // Close once queued output drains.
  kCloseNow,         // Close immediately (overload, teardown).
  kResume,           // Re-arm reads parked by inbox backpressure.
  kDrain,            // Flush remaining output (deadline-bounded) and exit.
};
struct IoOrder {
  IoOrderKind kind = IoOrderKind::kAppend;
  int64_t session = 0;
  int fd = -1;          // kAdopt.
  std::string bytes;    // kAppend.
  std::shared_ptr<std::atomic<int64_t>> pending_out;  // kAdopt.
};

struct IoThreadOptions {
  int index = 0;
  size_t max_line_bytes = 1 << 16;  // Also the binary frame cap.
  int engine_wake_fd = -1;          // eventfd kicked after inbox pushes.
  size_t inbox_high_water = 4096;   // Park reads past this inbox depth.
  double drain_deadline_seconds = 2.0;
};

class IoThread {
 public:
  explicit IoThread(IoThreadOptions options);
  ~IoThread();

  IoThread(const IoThread&) = delete;
  IoThread& operator=(const IoThread&) = delete;

  // Creates the epoll set + wake eventfd and launches the thread.
  bool Start(std::string* error);
  // Blocks until the thread exits (send kDrain first).
  void Join();

  // Engine-side handles. After staging orders, call Kick() once.
  SpscMailbox<IoEvent>& inbox() { return inbox_; }
  SpscMailbox<IoOrder>& orders() { return orders_; }
  void Kick();

  // True while reads are parked on inbox backpressure; the engine answers
  // with a kResume order after draining.
  bool paused() const { return paused_.load(std::memory_order_acquire); }

  // Consistent copy of this thread's counters (published once per wakeup).
  IoMetrics MetricsCopy();

 private:
  struct Conn {
    int fd = -1;
    int64_t session = 0;
    bool binary = false;
    bool saw_hello = false;   // First line examined (decoder mode fixed).
    bool stop_reading = false;
    bool close_after_write = false;
    uint32_t armed_events = 0;  // Currently registered epoll interest.
    LineBuffer in;
    BinaryFrameBuffer bin_in;
    // Engine-provided bytes; [out_sent, out.size()) still unsent. Consumed
    // prefix erased lazily so a slow reader drains linearly.
    std::string out;
    size_t out_sent = 0;
    std::shared_ptr<std::atomic<int64_t>> pending_out;
    size_t pending() const { return out.size() - out_sent; }

    explicit Conn(size_t max_line) : in(max_line), bin_in(max_line) {}
  };

  void Loop();
  void ProcessOrders();
  void HandleOrder(IoOrder* order);
  void Adopt(int fd, int64_t session,
             std::shared_ptr<std::atomic<int64_t>> pending_out);
  void ReadConn(Conn* conn);
  // Parses everything buffered on `conn`; returns false when parsing must
  // stop (fatal error or backpressure pause).
  bool ParseBuffered(Conn* conn);
  bool WriteConn(Conn* conn);  // False on a dead peer.
  void UpdateInterest(Conn* conn);
  void CloseConn(Conn* conn, bool notify_engine);
  void PushCommand(Conn* conn, const Command& cmd);
  void PushEvent(IoEventKind kind, int64_t session, const char* error);
  void NoteDepth(size_t depth);
  void PauseReads();
  void ResumeReads();
  void DrainAndExit();
  void PublishMetrics();

  IoThreadOptions options_;
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread thread_;

  SpscMailbox<IoEvent> inbox_;
  SpscMailbox<IoOrder> orders_;
  std::atomic<bool> paused_{false};

  std::map<int64_t, Conn> conns_;  // session -> connection.
  bool pushed_since_kick_ = false;
  bool draining_ = false;
  bool exit_ = false;
  Timer clock_;

  IoMetrics metrics_;
  std::mutex metrics_mutex_;
  IoMetrics metrics_snapshot_;

  // Reused scratch (steady-state allocation-free).
  Command scratch_cmd_;
  std::string scratch_error_;
  std::vector<int64_t> dead_sessions_;
};

}  // namespace serve
}  // namespace dynmis

#endif  // DYNMIS_SRC_SERVE_IO_THREAD_H_
