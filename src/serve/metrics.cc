#include "src/serve/metrics.h"

#include <cmath>

namespace dynmis {
namespace serve {
namespace {

// Geometric bucket layout: 0.5us * kGrowth^i. 128 buckets at 20% growth
// span ~0.5us to ~5e9us (>1h); anything beyond lands in the last bucket.
constexpr double kMinUs = 0.5;
constexpr double kGrowth = 1.2;

}  // namespace

double LatencyRecorder::BucketBoundUs(int i) {
  return kMinUs * std::pow(kGrowth, i + 1);
}

void LatencyRecorder::Record(double seconds) {
  if (seconds < 0) seconds = 0;
  const double us = seconds * 1e6;
  int bucket = 0;
  if (us > kMinUs) {
    bucket = static_cast<int>(std::log(us / kMinUs) / std::log(kGrowth));
    if (bucket >= kBuckets) bucket = kBuckets - 1;
  }
  ++counts_[bucket];
  ++total_;
  sum_seconds_ += seconds;
}

double LatencyRecorder::PercentileUs(double p) const {
  if (total_ == 0) return 0;
  const int64_t rank =
      static_cast<int64_t>(std::ceil(p * static_cast<double>(total_)));
  int64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    seen += counts_[i];
    if (seen >= rank) return BucketBoundUs(i);
  }
  return BucketBoundUs(kBuckets - 1);
}

}  // namespace serve
}  // namespace dynmis
