// Wire protocol of the serving layer: newline framing and command parsing.
//
// Lines are LF-terminated (a trailing CR is stripped, so telnet/netcat
// clients work) and parsed into typed Command values. Parsing is strict:
// every numeric token must consume fully, vertex ids must be non-negative,
// and trailing garbage is an error — a malformed line yields a structured
// error string, never a half-initialized command. Framing (LineBuffer)
// enforces the configured maximum line length so a client streaming an
// endless line cannot grow server memory; overflow is sticky and the server
// drops the connection.
//
// The parser knows nothing about sockets or the engine; it is unit-tested
// in isolation (tests/serve_protocol_test.cc).

#ifndef DYNMIS_SRC_SERVE_PROTOCOL_H_
#define DYNMIS_SRC_SERVE_PROTOCOL_H_

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

#include "src/graph/update_stream.h"

namespace dynmis {
namespace serve {

enum class Verb {
  kHello,     // HELLO <version>
  kIns,       // INS u v
  kDel,       // DEL u v
  kInsV,      // INSV [n1 n2 ...]
  kDelV,      // DELV u
  kQuery,     // QUERY u
  kSolution,  // SOLUTION
  kStats,     // STATS
  kSnapshot,  // SNAPSHOT <path>
  kTrace,     // TRACE <path>
  kVerify,    // VERIFY
  kBatch,     // BATCH <n>
  kEnd,       // END
  kRepl,      // REPL SUBSCRIBE <seq> [EPOCH <e>] | REPL STATUS
  kPromote,   // PROMOTE
  kReshard,   // RESHARD <shards> [hash|range|locality]
  kKIns,      // KINS <key> [n1 n2 ...]
  kKDel,      // KDEL <key>
  kKQuery,    // KQUERY <key>
  kQuit,      // QUIT (keep last: kNumVerbs is defined off it)
};

// True for the verbs that mutate the graph (and are therefore legal inside
// a BATCH frame and subject to admission batching): INS/DEL/INSV/DELV plus
// the keyed KINS/KDEL.
bool IsUpdateVerb(Verb verb);

// Display name of `verb` (the wire spelling).
const char* VerbName(Verb verb);

// External keys (KINS/KDEL/KQUERY) are opaque tokens of 1..kMaxKeyBytes
// printable, non-whitespace ASCII bytes; both framings enforce this.
inline constexpr size_t kMaxKeyBytes = 256;
bool IsValidKey(std::string_view key);

struct Command {
  Verb verb = Verb::kQuit;
  // kIns/kDel/kInsV/kDelV: the graph update (ids validated non-negative).
  // kKIns/kKDel: update.key carries the external key (KINS neighbors are
  // numeric vertex ids in update.neighbors; KDEL's update.u is resolved by
  // the admission layer).
  GraphUpdate update;
  // kQuery: the queried vertex. kKQuery: update.key carries the key.
  VertexId vertex = kInvalidVertex;
  // kHello: the client's protocol version.
  int version = 0;
  // kHello: the client asked for binary framing ("HELLO 2 BIN").
  bool binary = false;
  // kBatch: declared number of update lines to follow. kReshard: the
  // target shard count.
  int count = 0;
  // kSnapshot/kTrace: the target file path. kRepl: the subcommand
  // ("SUBSCRIBE" or "STATUS"). kReshard: the partition-plan name ("hash",
  // "range", or "locality"; empty means keep the server's current plan).
  std::string path;
  // kRepl SUBSCRIBE: first change-log seq the subscriber wants.
  int64_t seq = 0;
  // kRepl SUBSCRIBE: highest fencing epoch the subscriber has observed
  // (`EPOCH <e>`); -1 when the subscriber announced none. A primary that
  // sees an epoch above its own here fences itself (docs/OPERATIONS.md
  // "Failure modes & fencing").
  int64_t epoch = -1;
};

// Parses one complete line (already stripped of its newline). Returns false
// with `*error` holding a one-line reason on malformed input; `*cmd` is
// only meaningful on success.
bool ParseCommand(std::string_view line, Command* cmd, std::string* error);

// Renders `update` in the wire spelling ParseCommand accepts (INS/DEL/
// INSV/DELV; no trailing newline). Clients build their traffic with this
// so the spelling lives in exactly one file.
std::string FormatCommandLine(const GraphUpdate& update);

// Incremental newline framing over a byte stream, with a hard cap on line
// length. Append() raw reads; NextLine() yields complete lines in order.
// When a line exceeds `max_line_bytes` the buffer enters a sticky
// overflowed() state and yields nothing further.
class LineBuffer {
 public:
  explicit LineBuffer(size_t max_line_bytes)
      : max_line_bytes_(max_line_bytes) {}

  void Append(const char* data, size_t n);

  // The next complete line without its LF (and without a trailing CR), or
  // nullopt when no full line is buffered.
  std::optional<std::string> NextLine();

  // Allocation-free variant: the view is valid until the next Append() or
  // Reset(). The serving I/O threads parse from this.
  std::optional<std::string_view> NextLineView();

  bool overflowed() const { return overflowed_; }

  // Bytes buffered but not yet returned (diagnostics/tests), and a view of
  // them (valid until the next Append/Reset). The binary upgrade hands the
  // bytes that followed the HELLO line to the BinaryFrameBuffer with these.
  size_t pending_bytes() const { return buffer_.size() - consumed_; }
  std::string_view pending() const {
    return std::string_view(buffer_).substr(consumed_);
  }
  void Reset() {
    buffer_.clear();
    consumed_ = 0;
  }

 private:
  size_t max_line_bytes_;
  std::string buffer_;
  // Prefix of buffer_ already handed out as lines (compacted lazily).
  size_t consumed_ = 0;
  bool overflowed_ = false;
};

}  // namespace serve
}  // namespace dynmis

#endif  // DYNMIS_SRC_SERVE_PROTOCOL_H_
