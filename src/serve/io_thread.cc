#include "src/serve/io_thread.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/util/check.h"

namespace dynmis {
namespace serve {

namespace {

// epoll user data 0 is the thread's own wake eventfd; server sessions start
// at 1.
constexpr uint64_t kWakeTag = 0;

void WriteEventFd(int fd) {
  const uint64_t one = 1;
  (void)!write(fd, &one, sizeof(one));
}

}  // namespace

IoThread::IoThread(IoThreadOptions options) : options_(std::move(options)) {}

IoThread::~IoThread() {
  DYNMIS_CHECK(!thread_.joinable());  // Join() before destruction.
  for (auto& [session, conn] : conns_) {
    if (conn.fd >= 0) close(conn.fd);
  }
  if (wake_fd_ >= 0) close(wake_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
}

bool IoThread::Start(std::string* error) {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  if (epoll_fd_ < 0) {
    *error = std::string("epoll_create1: ") + std::strerror(errno);
    return false;
  }
  wake_fd_ = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    *error = std::string("eventfd: ") + std::strerror(errno);
    return false;
  }
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) != 0) {
    *error = std::string("epoll_ctl: ") + std::strerror(errno);
    return false;
  }
  thread_ = std::thread([this] { Loop(); });
  return true;
}

void IoThread::Join() {
  if (thread_.joinable()) thread_.join();
}

void IoThread::Kick() { WriteEventFd(wake_fd_); }

IoMetrics IoThread::MetricsCopy() {
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  return metrics_snapshot_;
}

void IoThread::PublishMetrics() {
  metrics_.inbox_depth_high_water = inbox_.depth_high_water();
  metrics_.connections = static_cast<int64_t>(conns_.size());
  std::lock_guard<std::mutex> lock(metrics_mutex_);
  metrics_snapshot_ = metrics_;
}

void IoThread::PushEvent(IoEventKind kind, int64_t session, const char* error) {
  const size_t depth = inbox_.Produce([&](IoEvent* ev) {
    ev->kind = kind;
    ev->session = session;
    ev->error.assign(error == nullptr ? "" : error);
  });
  pushed_since_kick_ = true;
  NoteDepth(depth);
}

void IoThread::PushCommand(Conn* conn, const Command& cmd) {
  const size_t depth = inbox_.Produce([&](IoEvent* ev) {
    ev->kind = IoEventKind::kCommand;
    ev->session = conn->session;
    ev->cmd = cmd;  // Copy-assign: slot strings/vectors reuse capacity.
    ev->error.clear();
  });
  pushed_since_kick_ = true;
  NoteDepth(depth);
}

void IoThread::NoteDepth(size_t depth) {
  if (depth > options_.inbox_high_water &&
      !paused_.load(std::memory_order_relaxed)) {
    PauseReads();
  }
}

void IoThread::PauseReads() {
  paused_.store(true, std::memory_order_release);
  for (auto& [session, conn] : conns_) UpdateInterest(&conn);
}

void IoThread::ResumeReads() {
  if (!paused_.load(std::memory_order_relaxed)) return;
  paused_.store(false, std::memory_order_release);
  // Bytes buffered during the pause have no further read event to parse
  // them; resume parsing explicitly.
  dead_sessions_.clear();
  for (auto& [session, conn] : conns_) {
    if (!conn.stop_reading && !ParseBuffered(&conn)) {
      if (conn.fd < 0) dead_sessions_.push_back(session);
    }
  }
  for (const int64_t session : dead_sessions_) conns_.erase(session);
  for (auto& [session, conn] : conns_) UpdateInterest(&conn);
}

void IoThread::UpdateInterest(Conn* conn) {
  if (conn->fd < 0) return;
  const bool reads = !conn->stop_reading && !draining_ &&
                     !paused_.load(std::memory_order_relaxed);
  uint32_t events = 0;
  if (reads) events |= EPOLLIN;
  if (conn->pending() > 0) events |= EPOLLOUT;
  if (events == conn->armed_events) return;
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = static_cast<uint64_t>(conn->session);
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn->fd, &ev);
  conn->armed_events = events;
}

void IoThread::Adopt(int fd, int64_t session,
                     std::shared_ptr<std::atomic<int64_t>> pending_out) {
  if (draining_) {
    close(fd);
    return;
  }
  auto [it, inserted] =
      conns_.emplace(session, Conn(options_.max_line_bytes));
  DYNMIS_CHECK(inserted);
  Conn& conn = it->second;
  conn.fd = fd;
  conn.session = session;
  conn.pending_out = std::move(pending_out);
  epoll_event ev{};
  conn.armed_events = paused_.load(std::memory_order_relaxed) ? 0 : EPOLLIN;
  ev.events = conn.armed_events;
  ev.data.u64 = static_cast<uint64_t>(session);
  if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    close(fd);
    conns_.erase(it);
    PushEvent(IoEventKind::kClosed, session, nullptr);
  }
}

void IoThread::CloseConn(Conn* conn, bool notify_engine) {
  const int64_t session = conn->session;
  if (conn->fd >= 0) {
    epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    close(conn->fd);
    conn->fd = -1;
  }
  if (notify_engine) PushEvent(IoEventKind::kClosed, session, nullptr);
}

// Parses whatever is buffered. Returns false when the caller must stop
// feeding this connection (fatal protocol error or backpressure pause);
// buffered leftovers survive in the decoders either way.
bool IoThread::ParseBuffered(Conn* conn) {
  while (true) {
    if (conn->binary) {
      const auto payload = conn->bin_in.NextFrame();
      if (!payload) {
        if (conn->bin_in.overflowed()) {
          ++metrics_.decode_errors;
          conn->stop_reading = true;
          PushEvent(IoEventKind::kFatal, conn->session, "frame too large");
          return false;
        }
        return true;
      }
      const double t0 = clock_.ElapsedSeconds();
      RequestFrameDecoder decoder;
      int verb_index = -1;
      bool ok = decoder.Begin(*payload, &scratch_error_);
      while (ok) {
        const RequestFrameDecoder::Step step =
            decoder.Next(&scratch_cmd_, &scratch_error_);
        if (step == RequestFrameDecoder::Step::kDone) break;
        if (step == RequestFrameDecoder::Step::kError) {
          ok = false;
          break;
        }
        if (verb_index < 0) verb_index = static_cast<int>(scratch_cmd_.verb);
        PushCommand(conn, scratch_cmd_);
      }
      if (!ok) {
        ++metrics_.decode_errors;
        conn->stop_reading = true;
        PushEvent(IoEventKind::kFatal, conn->session, scratch_error_.c_str());
        return false;
      }
      ++metrics_.frames_decoded;
      if (verb_index >= 0) {
        metrics_.decode_latency[verb_index].Record(clock_.ElapsedSeconds() -
                                                   t0);
      }
    } else {
      const auto line = conn->in.NextLineView();
      if (!line) {
        if (conn->in.overflowed()) {
          ++metrics_.decode_errors;
          conn->stop_reading = true;
          PushEvent(IoEventKind::kFatal, conn->session, "line too long");
          return false;
        }
        return true;
      }
      const double t0 = clock_.ElapsedSeconds();
      if (!ParseCommand(*line, &scratch_cmd_, &scratch_error_)) {
        ++metrics_.frames_decoded;
        ++metrics_.decode_errors;
        PushEvent(IoEventKind::kBadLine, conn->session,
                  scratch_error_.c_str());
        if (!conn->saw_hello) {
          // A garbled first line is a failed handshake; the engine replies
          // and closes, so stop feeding it further commands.
          conn->saw_hello = true;
          conn->stop_reading = true;
          return false;
        }
        continue;
      }
      ++metrics_.frames_decoded;
      metrics_.decode_latency[static_cast<int>(scratch_cmd_.verb)].Record(
          clock_.ElapsedSeconds() - t0);
      const bool upgrade =
          !conn->saw_hello && scratch_cmd_.verb == Verb::kHello &&
          scratch_cmd_.binary;
      conn->saw_hello = true;
      PushCommand(conn, scratch_cmd_);
      if (upgrade) {
        // Flip the decoder before touching the bytes that followed the
        // HELLO line: a pipelining client's first frames are already here.
        conn->binary = true;
        const std::string_view rest = conn->in.pending();
        if (!rest.empty()) conn->bin_in.Append(rest.data(), rest.size());
        conn->in.Reset();
      }
    }
    if (paused_.load(std::memory_order_relaxed)) return false;
  }
}

void IoThread::ReadConn(Conn* conn) {
  if (conn->stop_reading || conn->fd < 0) return;
  char buf[4096];
  // A per-call chunk budget keeps one firehose connection from starving
  // the rest; level-triggered epoll re-signals the leftovers.
  for (int chunks = 0; chunks < 64; ++chunks) {
    const ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      metrics_.bytes_read += n;
      if (conn->binary) {
        conn->bin_in.Append(buf, static_cast<size_t>(n));
      } else {
        conn->in.Append(buf, static_cast<size_t>(n));
      }
      if (!ParseBuffered(conn)) return;
      continue;
    }
    if (n == 0) {  // Orderly peer close; the engine answers what arrived.
      conn->stop_reading = true;
      PushEvent(IoEventKind::kEof, conn->session, nullptr);
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EINTR) continue;
    CloseConn(conn, /*notify_engine=*/true);
    return;
  }
}

bool IoThread::WriteConn(Conn* conn) {
  if (conn->fd < 0) return true;
  while (conn->pending() > 0) {
    const ssize_t n = send(conn->fd, conn->out.data() + conn->out_sent,
                           conn->pending(), MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_sent += static_cast<size_t>(n);
      metrics_.bytes_written += n;
      conn->pending_out->fetch_sub(n, std::memory_order_relaxed);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  if (conn->pending() == 0) {
    conn->out.clear();
    conn->out_sent = 0;
  } else if (conn->out_sent > (1 << 20) &&
             conn->out_sent > conn->out.size() / 2) {
    conn->out.erase(0, conn->out_sent);
    conn->out_sent = 0;
  }
  return true;
}

void IoThread::HandleOrder(IoOrder* order) {
  if (order->kind == IoOrderKind::kAdopt) {
    Adopt(order->fd, order->session, std::move(order->pending_out));
    return;
  }
  if (order->kind == IoOrderKind::kResume) {
    ResumeReads();
    return;
  }
  if (order->kind == IoOrderKind::kDrain) {
    draining_ = true;
    clock_.Reset();  // Drain deadline measured from here.
    for (auto& [session, conn] : conns_) {
      conn.stop_reading = true;
      UpdateInterest(&conn);
    }
    return;
  }
  auto it = conns_.find(order->session);
  if (it == conns_.end()) return;  // Raced a close; order is moot.
  Conn& conn = it->second;
  switch (order->kind) {
    case IoOrderKind::kAppend:
      conn.out.append(order->bytes);
      if (!WriteConn(&conn)) {
        CloseConn(&conn, /*notify_engine=*/true);
        conns_.erase(it);
        return;
      }
      break;
    case IoOrderKind::kCloseAfterWrite:
      conn.close_after_write = true;
      conn.stop_reading = true;
      if (!WriteConn(&conn)) {
        CloseConn(&conn, /*notify_engine=*/true);
        conns_.erase(it);
        return;
      }
      if (conn.pending() == 0) {
        CloseConn(&conn, /*notify_engine=*/true);
        conns_.erase(it);
        return;
      }
      break;
    case IoOrderKind::kCloseNow:
      // The engine already dropped the session; no notification needed.
      CloseConn(&conn, /*notify_engine=*/false);
      conns_.erase(it);
      return;
    default:
      break;
  }
  UpdateInterest(&conn);
}

void IoThread::ProcessOrders() {
  std::vector<IoOrder>* orders = nullptr;
  const size_t n = orders_.Drain(&orders);
  for (size_t i = 0; i < n; ++i) HandleOrder(&(*orders)[i]);
}

void IoThread::DrainAndExit() {
  for (auto& [session, conn] : conns_) {
    if (conn.fd >= 0) {
      close(conn.fd);
      conn.fd = -1;
    }
  }
  conns_.clear();
  exit_ = true;
}

void IoThread::Loop() {
  epoll_event events[128];
  while (!exit_) {
    int timeout_ms = -1;
    if (draining_) {
      bool outstanding = false;
      for (auto& [session, conn] : conns_) {
        if (conn.fd >= 0 && conn.pending() > 0) outstanding = true;
      }
      if (!outstanding) {
        DrainAndExit();
        break;
      }
      const double remaining =
          options_.drain_deadline_seconds - clock_.ElapsedSeconds();
      if (remaining <= 0) {  // Hard deadline: slow readers lose their tail.
        DrainAndExit();
        break;
      }
      timeout_ms = static_cast<int>(remaining * 1e3) + 1;
    }
    const int n = epoll_wait(epoll_fd_, events, 128, timeout_ms);
    if (n < 0 && errno != EINTR) break;
    ++metrics_.wakeups;
    if (n > 0) {
      for (int i = 0; i < n; ++i) {
        if (events[i].data.u64 == kWakeTag) {
          uint64_t drain = 0;
          (void)!read(wake_fd_, &drain, sizeof(drain));
          continue;
        }
        const int64_t session = static_cast<int64_t>(events[i].data.u64);
        auto it = conns_.find(session);
        if (it == conns_.end()) continue;
        Conn& conn = it->second;
        if ((events[i].events & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
          ReadConn(&conn);
        }
        if (conn.fd >= 0 &&
            ((events[i].events & EPOLLOUT) != 0 || conn.pending() > 0)) {
          if (!WriteConn(&conn)) CloseConn(&conn, /*notify_engine=*/true);
        }
        if (conn.fd >= 0 && conn.close_after_write && conn.pending() == 0) {
          CloseConn(&conn, /*notify_engine=*/true);
        }
        if (conn.fd < 0) {
          conns_.erase(it);
        } else {
          UpdateInterest(&conn);
        }
      }
    }
    ProcessOrders();
    if (pushed_since_kick_) {
      pushed_since_kick_ = false;
      WriteEventFd(options_.engine_wake_fd);
    }
    PublishMetrics();
  }
  if (pushed_since_kick_) WriteEventFd(options_.engine_wake_fd);
  PublishMetrics();
}

}  // namespace serve
}  // namespace dynmis
