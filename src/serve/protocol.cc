#include "src/serve/protocol.h"

#include <charconv>
#include <vector>

#include "src/shard/partition_plan.h"

namespace dynmis {
namespace serve {
namespace {

// Splits `line` into whitespace-separated tokens (spaces and tabs).
std::vector<std::string_view> Tokenize(std::string_view line) {
  std::vector<std::string_view> tokens;
  size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (i > start) tokens.push_back(line.substr(start, i - start));
  }
  return tokens;
}

// Strict integer parse: the whole token must be consumed and the value must
// fit. Returns false without touching `*out` otherwise.
bool ParseInt(std::string_view token, int64_t* out) {
  int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc() || ptr != token.data() + token.size()) return false;
  *out = value;
  return true;
}

bool ParseVertex(std::string_view token, VertexId* out, std::string* error,
                 const char* what) {
  int64_t value = 0;
  if (!ParseInt(token, &value) || value < 0 || value > INT32_MAX) {
    *error = std::string("bad ") + what + ": expected a non-negative vertex id";
    return false;
  }
  *out = static_cast<VertexId>(value);
  return true;
}

bool WantArgs(const std::vector<std::string_view>& tokens, size_t n,
              std::string* error) {
  if (tokens.size() - 1 == n) return true;
  *error = std::string(tokens[0]) + ": expected " + std::to_string(n) +
           " argument(s), got " + std::to_string(tokens.size() - 1);
  return false;
}

// External keys are opaque but bounded tokens: printable ASCII with no
// whitespace (the tokenizer splits on it anyway), at most 256 bytes. The
// same validation runs on the binary opcodes so the two framings accept
// identical key spaces.
bool ParseKey(std::string_view token, std::string* out, std::string* error) {
  if (!IsValidKey(token)) {
    *error =
        "bad key: expected 1..256 printable non-whitespace ASCII bytes";
    return false;
  }
  out->assign(token.data(), token.size());
  return true;
}

}  // namespace

bool IsValidKey(std::string_view key) {
  if (key.empty() || key.size() > kMaxKeyBytes) return false;
  for (const char c : key) {
    if (c <= 0x20 || c >= 0x7F) return false;
  }
  return true;
}

bool IsUpdateVerb(Verb verb) {
  return verb == Verb::kIns || verb == Verb::kDel || verb == Verb::kInsV ||
         verb == Verb::kDelV || verb == Verb::kKIns || verb == Verb::kKDel;
}

const char* VerbName(Verb verb) {
  switch (verb) {
    case Verb::kHello:
      return "HELLO";
    case Verb::kIns:
      return "INS";
    case Verb::kDel:
      return "DEL";
    case Verb::kInsV:
      return "INSV";
    case Verb::kDelV:
      return "DELV";
    case Verb::kQuery:
      return "QUERY";
    case Verb::kSolution:
      return "SOLUTION";
    case Verb::kStats:
      return "STATS";
    case Verb::kSnapshot:
      return "SNAPSHOT";
    case Verb::kTrace:
      return "TRACE";
    case Verb::kVerify:
      return "VERIFY";
    case Verb::kBatch:
      return "BATCH";
    case Verb::kEnd:
      return "END";
    case Verb::kRepl:
      return "REPL";
    case Verb::kPromote:
      return "PROMOTE";
    case Verb::kReshard:
      return "RESHARD";
    case Verb::kKIns:
      return "KINS";
    case Verb::kKDel:
      return "KDEL";
    case Verb::kKQuery:
      return "KQUERY";
    case Verb::kQuit:
      return "QUIT";
  }
  return "?";
}

bool ParseCommand(std::string_view line, Command* cmd, std::string* error) {
  const std::vector<std::string_view> tokens = Tokenize(line);
  if (tokens.empty()) {
    *error = "empty command";
    return false;
  }
  const std::string_view verb = tokens[0];
  *cmd = Command();

  if (verb == "HELLO") {
    // HELLO <version> [BIN] — the optional BIN token asks for binary
    // framing after the (text) greeting.
    if (tokens.size() != 2 && !(tokens.size() == 3 && tokens[2] == "BIN")) {
      *error = "HELLO: expected HELLO <version> [BIN]";
      return false;
    }
    int64_t version = 0;
    if (!ParseInt(tokens[1], &version) || version <= 0 ||
        version > INT32_MAX) {
      *error = "HELLO: expected a positive protocol version";
      return false;
    }
    cmd->verb = Verb::kHello;
    cmd->version = static_cast<int>(version);
    cmd->binary = tokens.size() == 3;
    return true;
  }
  if (verb == "INS" || verb == "DEL") {
    if (!WantArgs(tokens, 2, error)) return false;
    cmd->verb = verb == "INS" ? Verb::kIns : Verb::kDel;
    cmd->update.kind =
        verb == "INS" ? UpdateKind::kInsertEdge : UpdateKind::kDeleteEdge;
    return ParseVertex(tokens[1], &cmd->update.u, error, "endpoint") &&
           ParseVertex(tokens[2], &cmd->update.v, error, "endpoint");
  }
  if (verb == "INSV") {
    cmd->verb = Verb::kInsV;
    cmd->update.kind = UpdateKind::kInsertVertex;
    cmd->update.neighbors.reserve(tokens.size() - 1);
    for (size_t i = 1; i < tokens.size(); ++i) {
      VertexId v = kInvalidVertex;
      if (!ParseVertex(tokens[i], &v, error, "neighbor")) return false;
      cmd->update.neighbors.push_back(v);
    }
    return true;
  }
  if (verb == "DELV") {
    if (!WantArgs(tokens, 1, error)) return false;
    cmd->verb = Verb::kDelV;
    cmd->update.kind = UpdateKind::kDeleteVertex;
    return ParseVertex(tokens[1], &cmd->update.u, error, "vertex");
  }
  if (verb == "QUERY") {
    if (!WantArgs(tokens, 1, error)) return false;
    cmd->verb = Verb::kQuery;
    return ParseVertex(tokens[1], &cmd->vertex, error, "vertex");
  }
  if (verb == "KINS") {
    // KINS <key> [n1 n2 ...] — a keyed vertex insert. The neighbors are
    // numeric vertex ids (mixing keys into the adjacency list would make
    // every admission a multi-key resolve; clients that only know keys
    // resolve them first with KQUERY).
    if (tokens.size() < 2) {
      *error = "KINS: expected <key> [n1 n2 ...]";
      return false;
    }
    cmd->verb = Verb::kKIns;
    cmd->update.kind = UpdateKind::kInsertVertex;
    if (!ParseKey(tokens[1], &cmd->update.key, error)) return false;
    cmd->update.neighbors.reserve(tokens.size() - 2);
    for (size_t i = 2; i < tokens.size(); ++i) {
      VertexId v = kInvalidVertex;
      if (!ParseVertex(tokens[i], &v, error, "neighbor")) return false;
      cmd->update.neighbors.push_back(v);
    }
    return true;
  }
  if (verb == "KDEL") {
    if (!WantArgs(tokens, 1, error)) return false;
    cmd->verb = Verb::kKDel;
    cmd->update.kind = UpdateKind::kDeleteVertex;
    return ParseKey(tokens[1], &cmd->update.key, error);
  }
  if (verb == "KQUERY") {
    if (!WantArgs(tokens, 1, error)) return false;
    cmd->verb = Verb::kKQuery;
    return ParseKey(tokens[1], &cmd->update.key, error);
  }
  if (verb == "SOLUTION" || verb == "STATS" || verb == "VERIFY" ||
      verb == "END" || verb == "PROMOTE" || verb == "QUIT") {
    if (!WantArgs(tokens, 0, error)) return false;
    if (verb == "SOLUTION") {
      cmd->verb = Verb::kSolution;
    } else if (verb == "STATS") {
      cmd->verb = Verb::kStats;
    } else if (verb == "VERIFY") {
      cmd->verb = Verb::kVerify;
    } else if (verb == "END") {
      cmd->verb = Verb::kEnd;
    } else if (verb == "PROMOTE") {
      cmd->verb = Verb::kPromote;
    } else {
      cmd->verb = Verb::kQuit;
    }
    return true;
  }
  if (verb == "REPL") {
    if (tokens.size() >= 2 && tokens[1] == "STATUS") {
      if (!WantArgs(tokens, 1, error)) return false;
      cmd->verb = Verb::kRepl;
      cmd->path = "STATUS";
      return true;
    }
    if (tokens.size() >= 2 && tokens[1] == "SUBSCRIBE") {
      if (tokens.size() != 3 && tokens.size() != 5) {
        *error = "REPL SUBSCRIBE: expected <seq> [EPOCH <epoch>]";
        return false;
      }
      int64_t seq = 0;
      if (!ParseInt(tokens[2], &seq) || seq < 0) {
        *error = "REPL SUBSCRIBE: expected a non-negative sequence number";
        return false;
      }
      int64_t epoch = -1;
      if (tokens.size() == 5) {
        if (tokens[3] != "EPOCH" || !ParseInt(tokens[4], &epoch) ||
            epoch < 0) {
          *error = "REPL SUBSCRIBE: expected EPOCH <non-negative epoch>";
          return false;
        }
      }
      cmd->verb = Verb::kRepl;
      cmd->path = "SUBSCRIBE";
      cmd->seq = seq;
      cmd->epoch = epoch;
      return true;
    }
    *error = "REPL: expected SUBSCRIBE <seq> [EPOCH <e>] or STATUS";
    return false;
  }
  if (verb == "RESHARD") {
    if (tokens.size() < 2 || tokens.size() > 3) {
      *error = "RESHARD: expected <shards> [hash|range|locality]";
      return false;
    }
    int64_t shards = 0;
    if (!ParseInt(tokens[1], &shards) || shards < 1 || shards > 1024) {
      *error = "RESHARD: expected a shard count in [1, 1024]";
      return false;
    }
    cmd->verb = Verb::kReshard;
    cmd->count = static_cast<int>(shards);
    cmd->path.clear();
    if (tokens.size() == 3) {
      PartitionStrategy strategy;
      if (!ParsePartitionStrategy(std::string(tokens[2]), &strategy)) {
        *error = "RESHARD: unknown partition plan '" + std::string(tokens[2]) +
                 "' (expected hash, range, or locality)";
        return false;
      }
      cmd->path.assign(tokens[2].data(), tokens[2].size());
    }
    return true;
  }
  if (verb == "SNAPSHOT" || verb == "TRACE") {
    // The path is the rest of the line verbatim (paths may contain spaces
    // only if the client avoids leading/trailing ones; tokens are rejoined
    // with single spaces, which covers sane paths).
    if (tokens.size() < 2) {
      *error = std::string(verb) + ": expected a file path";
      return false;
    }
    cmd->verb = verb == "SNAPSHOT" ? Verb::kSnapshot : Verb::kTrace;
    for (size_t i = 1; i < tokens.size(); ++i) {
      if (i > 1) cmd->path += ' ';
      cmd->path.append(tokens[i].data(), tokens[i].size());
    }
    return true;
  }
  if (verb == "BATCH") {
    if (!WantArgs(tokens, 1, error)) return false;
    int64_t count = 0;
    if (!ParseInt(tokens[1], &count) || count <= 0 || count > (1 << 20)) {
      *error = "BATCH: expected a count in [1, 1048576]";
      return false;
    }
    cmd->verb = Verb::kBatch;
    cmd->count = static_cast<int>(count);
    return true;
  }
  *error = "unknown command: " + std::string(verb);
  return false;
}

std::string FormatCommandLine(const GraphUpdate& update) {
  switch (update.kind) {
    case UpdateKind::kInsertEdge:
      return "INS " + std::to_string(update.u) + " " +
             std::to_string(update.v);
    case UpdateKind::kDeleteEdge:
      return "DEL " + std::to_string(update.u) + " " +
             std::to_string(update.v);
    case UpdateKind::kInsertVertex: {
      // A keyed insert keeps its key through the change log and the
      // replication stream, so followers bind the same key to the id their
      // own deterministic allocation produces.
      std::string line =
          update.key.empty() ? std::string("INSV") : "KINS " + update.key;
      for (const VertexId n : update.neighbors) {
        line += ' ';
        line += std::to_string(n);
      }
      return line;
    }
    case UpdateKind::kDeleteVertex:
      if (!update.key.empty()) return "KDEL " + update.key;
      return "DELV " + std::to_string(update.u);
  }
  return "";
}

void LineBuffer::Append(const char* data, size_t n) {
  if (overflowed_) return;
  buffer_.append(data, n);
  // Compact once the consumed prefix dominates, so long sessions do not
  // accumulate dead bytes.
  if (consumed_ > 4096 && consumed_ > buffer_.size() / 2) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
}

std::optional<std::string> LineBuffer::NextLine() {
  const auto view = NextLineView();
  if (!view) return std::nullopt;
  return std::string(*view);
}

std::optional<std::string_view> LineBuffer::NextLineView() {
  if (overflowed_) return std::nullopt;
  const size_t eol = buffer_.find('\n', consumed_);
  if (eol == std::string::npos) {
    if (buffer_.size() - consumed_ > max_line_bytes_) overflowed_ = true;
    return std::nullopt;
  }
  if (eol - consumed_ > max_line_bytes_) {
    overflowed_ = true;
    return std::nullopt;
  }
  size_t end = eol;
  if (end > consumed_ && buffer_[end - 1] == '\r') --end;
  const std::string_view line(buffer_.data() + consumed_, end - consumed_);
  consumed_ = eol + 1;
  return line;
}

}  // namespace serve
}  // namespace dynmis
