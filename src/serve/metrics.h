// In-server metrics registry for the serving layer: per-command counters,
// admission-batch occupancy, and latency percentiles, all O(1) per event so
// recording never shows up in the serving hot path.
//
// Latencies go into a log-bucketed histogram (~20% bucket growth over
// 0.5us..>1h), so p50/p99 are estimates with bounded relative error and
// constant memory — a raw-sample reservoir would either bound the window or
// grow forever. STATS renders everything as one JSON object (schema in
// README "Serving").

#ifndef DYNMIS_SRC_SERVE_METRICS_H_
#define DYNMIS_SRC_SERVE_METRICS_H_

#include <array>
#include <cstdint>

#include "src/serve/protocol.h"

namespace dynmis {
namespace serve {

// Constant-memory latency histogram. Record() is O(1); PercentileUs() walks
// the 128 buckets.
class LatencyRecorder {
 public:
  void Record(double seconds);

  int64_t count() const { return total_; }
  double total_seconds() const { return sum_seconds_; }

  // Nearest-rank percentile estimate in microseconds, p in (0, 1]. Returns
  // the upper bound of the bucket holding the rank (0 when empty).
  double PercentileUs(double p) const;

  static constexpr int kBuckets = 128;
  // Upper bound (microseconds) of bucket i.
  static double BucketBoundUs(int i);

 private:
  std::array<int64_t, kBuckets> counts_{};
  int64_t total_ = 0;
  double sum_seconds_ = 0;
};

// Number of distinct protocol verbs (per-command counters are indexed by
// static_cast<int>(Verb)).
inline constexpr int kNumVerbs = static_cast<int>(Verb::kQuit) + 1;

// The counters the event loop bumps. Plain struct — the loop is single-
// threaded, so there is no atomicity to manage.
struct ServeMetrics {
  int64_t connections_accepted = 0;
  int64_t protocol_errors = 0;

  // Admission layer: admitted = validated and enqueued; applied = flushed
  // through the backend; rejected = failed validation (never reached it).
  int64_t ops_admitted = 0;
  int64_t ops_applied = 0;
  int64_t ops_rejected = 0;
  int64_t batches_flushed = 0;
  int64_t batch_ops_total = 0;
  int64_t flushes_full = 0;
  int64_t flushes_deadline = 0;
  int64_t flushes_barrier = 0;

  std::array<int64_t, kNumVerbs> commands{};

  // Replication: change-log appends, live subscriber pushes, follower-side
  // applied batches, promotions and completed reshard swaps. Snapshot
  // counters live on the Snapshotter (its worker thread owns them).
  int64_t repl_ops_logged = 0;
  int64_t repl_batches_logged = 0;
  int64_t repl_batches_streamed = 0;  // RBATCH frames pushed/pumped out.
  int64_t repl_batches_applied = 0;   // Follower: upstream batches applied.
  int64_t repl_promotions = 0;
  int64_t repl_resharded = 0;
  int64_t repl_reconnects = 0;  // Successful upstream re-establishments.

  // Enqueue -> batch-applied time per update op; whole-command time for
  // queries (QUERY/SOLUTION/STATS/VERIFY).
  LatencyRecorder update_latency;
  LatencyRecorder query_latency;

  double MeanBatchOccupancy() const {
    return batches_flushed > 0
               ? static_cast<double>(batch_ops_total) /
                     static_cast<double>(batches_flushed)
               : 0;
  }
};

// Per-I/O-thread transport counters. Each I/O thread mutates its own plain
// instance on the hot path and republishes a whole-struct copy under a
// mutex once per wakeup (src/serve/io_thread.h), so STATS on the engine
// thread reads a consistent snapshot without atomics in the decode loop.
struct IoMetrics {
  int64_t wakeups = 0;         // epoll_wait returns.
  int64_t frames_decoded = 0;  // Text lines + binary frames parsed.
  int64_t bytes_read = 0;
  int64_t bytes_written = 0;
  int64_t decode_errors = 0;
  int64_t connections = 0;  // Currently owned by this thread.
  // High-water depth of this thread's inbox to the engine (mirrored from
  // the mailbox at publish time).
  int64_t inbox_depth_high_water = 0;
  // Wire-to-Command decode time per verb (BATCH frames record under kBatch).
  std::array<LatencyRecorder, kNumVerbs> decode_latency;
};

}  // namespace serve
}  // namespace dynmis

#endif  // DYNMIS_SRC_SERVE_METRICS_H_
