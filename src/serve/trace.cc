#include "src/serve/trace.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "src/graph/update_trace_io.h"
#include "src/util/check.h"

namespace dynmis {
namespace serve {

bool WriteServeTrace(const ServeTrace& trace, const std::string& path) {
  // FILE* rather than ofstream so the drain path can fsync: a trace written
  // at SIGTERM must survive the host going down right after the process
  // exits, or the "durably replayable" contract is theater.
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) return false;
  std::string text = "# dynmis serve trace, " +
                     std::to_string(trace.updates.size()) + " updates\n";
  size_t idx = 0;
  for (const int64_t size : trace.batch_sizes) {
    text += "# batch " + std::to_string(size) + "\n";
    for (int64_t i = 0; i < size; ++i) {
      text += FormatUpdate(trace.updates[idx++]);
      text += '\n';
    }
  }
  DYNMIS_CHECK(idx == trace.updates.size());
  bool ok = std::fwrite(text.data(), 1, text.size(), out) == text.size();
  ok = std::fflush(out) == 0 && ok;
  int rc;
  do {
    rc = fsync(fileno(out));  // EINTR leaves durability unknown: retry.
  } while (rc != 0 && errno == EINTR);
  ok = rc == 0 && ok;
  ok = std::fclose(out) == 0 && ok;
  return ok;
}

bool LoadServeTrace(const std::string& path, ServeTrace* out,
                    std::string* error) {
  *out = ServeTrace();
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open trace: " + path;
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const auto updates = ParseUpdateTrace(text);
  if (!updates) {
    *error = "malformed trace: " + path;
    return false;
  }
  out->updates = *updates;
  std::istringstream lines(text);
  std::string line;
  int64_t covered = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("# batch ", 0) == 0) {
      const int64_t size = std::atoll(line.c_str() + 8);
      out->batch_sizes.push_back(size);
      covered += size;
    }
  }
  if (covered != static_cast<int64_t>(out->updates.size())) {
    *error = "trace batch boundaries cover " + std::to_string(covered) +
             " of " + std::to_string(out->updates.size()) + " ops";
    return false;
  }
  return true;
}

}  // namespace serve
}  // namespace dynmis
