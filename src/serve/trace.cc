#include "src/serve/trace.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "src/graph/update_trace_io.h"
#include "src/util/check.h"

namespace dynmis {
namespace serve {

bool WriteServeTrace(const ServeTrace& trace, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# dynmis serve trace, " << trace.updates.size() << " updates\n";
  size_t idx = 0;
  for (const int64_t size : trace.batch_sizes) {
    out << "# batch " << size << "\n";
    for (int64_t i = 0; i < size; ++i) {
      out << FormatUpdate(trace.updates[idx++]) << "\n";
    }
  }
  DYNMIS_CHECK(idx == trace.updates.size());
  return static_cast<bool>(out);
}

bool LoadServeTrace(const std::string& path, ServeTrace* out,
                    std::string* error) {
  *out = ServeTrace();
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open trace: " + path;
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  const auto updates = ParseUpdateTrace(text);
  if (!updates) {
    *error = "malformed trace: " + path;
    return false;
  }
  out->updates = *updates;
  std::istringstream lines(text);
  std::string line;
  int64_t covered = 0;
  while (std::getline(lines, line)) {
    if (line.rfind("# batch ", 0) == 0) {
      const int64_t size = std::atoll(line.c_str() + 8);
      out->batch_sizes.push_back(size);
      covered += size;
    }
  }
  if (covered != static_cast<int64_t>(out->updates.size())) {
    *error = "trace batch boundaries cover " + std::to_string(covered) +
             " of " + std::to_string(out->updates.size()) + " ops";
    return false;
  }
  return true;
}

}  // namespace serve
}  // namespace dynmis
