// Cross-thread plumbing for the serving layer: a double-buffered SPSC
// mailbox (I/O thread <-> engine thread) and a slot-reusing ring queue for
// the engine's per-connection response/frame streams.
//
// Both containers are built around the same idea: once warmed up, the
// steady-state serving path must not allocate. Slots are never destroyed on
// consumption — they are overwritten on reuse — so any std::string or
// std::vector living inside an element keeps its capacity across
// produce/consume cycles. The ring grows by doubling; the mailbox grows its
// two buffers independently. (tests/serve_soak_test.cc holds the line with
// a counting operator new.)

#ifndef DYNMIS_SRC_SERVE_MAILBOX_H_
#define DYNMIS_SRC_SERVE_MAILBOX_H_

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace dynmis {
namespace serve {

// Single-producer single-consumer mailbox. The producer fills slots under a
// short mutex hold; the consumer swaps the filled buffer out wholesale and
// processes it lock-free. Consumed elements are handed back (still
// constructed) on the next swap, so slot internals are reused rather than
// reallocated.
template <typename T>
class SpscMailbox {
 public:
  // Producer: overwrite one reused slot via `fill(T*)`. Returns the queue
  // depth after the push (the producer uses it for backpressure).
  template <typename Fn>
  size_t Produce(Fn&& fill) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (fill_size_ == fill_.size()) fill_.emplace_back();
    fill(&fill_[fill_size_]);
    ++fill_size_;
    if (static_cast<int64_t>(fill_size_) > depth_high_water_) {
      depth_high_water_ = static_cast<int64_t>(fill_size_);
    }
    return fill_size_;
  }

  // Consumer: swaps the filled buffer out. `*out` points at the drained
  // elements (valid until the next Drain); returns how many are live.
  size_t Drain(std::vector<T>** out) {
    size_t n = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      std::swap(fill_, drain_);
      n = fill_size_;
      fill_size_ = 0;
    }
    *out = &drain_;
    return n;
  }

  size_t ApproxDepth() {
    std::lock_guard<std::mutex> lock(mutex_);
    return fill_size_;
  }

  int64_t depth_high_water() {
    std::lock_guard<std::mutex> lock(mutex_);
    return depth_high_water_;
  }

 private:
  std::mutex mutex_;
  std::vector<T> fill_;   // Producer side (guarded).
  size_t fill_size_ = 0;  // Live prefix of fill_ (guarded).
  std::vector<T> drain_;  // Consumer-owned between Drain() calls.
  int64_t depth_high_water_ = 0;
};

// FIFO ring with deque-ish access (front/back/pop both ends) over a
// power-of-two slot array. PushSlot() hands back a *reused* element — the
// caller overwrites every field it cares about — and pop just moves an
// index, so element internals survive for the next occupant.
template <typename T>
class RingQueue {
 public:
  bool empty() const { return size_ == 0; }
  size_t size() const { return size_; }

  T& operator[](size_t i) { return slots_[(head_ + i) & Mask()]; }
  const T& operator[](size_t i) const { return slots_[(head_ + i) & Mask()]; }

  T& front() { return slots_[head_]; }
  const T& front() const { return slots_[head_]; }
  T& back() { return slots_[(head_ + size_ - 1) & Mask()]; }

  // Appends and returns the slot; contents are whatever a previous occupant
  // left behind.
  T& PushSlot() {
    if (size_ == slots_.size()) Grow();
    T& slot = slots_[(head_ + size_) & Mask()];
    ++size_;
    return slot;
  }

  void pop_front() {
    head_ = (head_ + 1) & Mask();
    --size_;
  }
  void pop_back() { --size_; }

 private:
  size_t Mask() const { return slots_.size() - 1; }

  void Grow() {
    std::vector<T> bigger(slots_.empty() ? 8 : slots_.size() * 2);
    for (size_t i = 0; i < size_; ++i) {
      bigger[i] = std::move(slots_[(head_ + i) & Mask()]);
    }
    slots_ = std::move(bigger);
    head_ = 0;
  }

  std::vector<T> slots_;
  size_t head_ = 0;
  size_t size_ = 0;
};

}  // namespace serve
}  // namespace dynmis

#endif  // DYNMIS_SRC_SERVE_MAILBOX_H_
