#include "src/serve/workload.h"

#include "src/graph/datasets.h"
#include "src/graph/generators.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace dynmis {
namespace serve {
namespace {

EdgeListGraph NamedDataset(const std::string& name) {
  const DatasetSpec* spec = FindDataset(name);
  DYNMIS_CHECK(spec != nullptr);
  return GenerateDataset(*spec);
}

}  // namespace

EdgeListGraph BuildServeWorkloadGraph(const std::string& name) {
  if (name == "smoke") {
    Rng rng(4242);
    return ChungLuPowerLaw(1500, 2.3, 8.0, &rng);
  }
  if (name == "easy") return NamedDataset("web-Google");
  if (name == "hard") return NamedDataset("soc-pokec");
  if (name == "powerlaw") {
    Rng rng(777);
    return PowerLawRandomGraph(12000, 2.3, 2, 120, &rng);
  }
  DYNMIS_CHECK(false);
  return {};
}

UpdateStreamOptions ServeWorkloadStream(const std::string& name) {
  UpdateStreamOptions stream;
  if (name == "smoke") {
    stream.seed = 17;
  } else if (name == "easy") {
    stream.seed = 23;
  } else if (name == "hard") {
    stream.seed = 29;
    stream.bias = EndpointBias::kDegreeProportional;
  } else if (name == "powerlaw") {
    stream.seed = 31;
  } else {
    DYNMIS_CHECK(false);
  }
  return stream;
}

bool BuildServeWorkload(const std::string& name, ServeWorkload* out) {
  *out = ServeWorkload();
  out->name = name;
  bool known = false;
  for (const std::string& candidate : ServeWorkloadNames()) {
    if (candidate == name) known = true;
  }
  if (!known) return false;
  out->base = BuildServeWorkloadGraph(name);
  out->stream = ServeWorkloadStream(name);
  // Sizing mirrors the bench scenarios: light churn is ~m/10 (easy), heavy
  // churn ~m/2 (hard); the generated graphs use fixed counts.
  if (name == "smoke") {
    out->default_updates = 2000;
  } else if (name == "easy") {
    out->default_updates = static_cast<int>(out->base.NumEdges() / 10);
  } else if (name == "hard") {
    out->default_updates = static_cast<int>(out->base.NumEdges() / 2);
  } else {
    out->default_updates = 20000;
  }
  return true;
}

std::vector<std::string> ServeWorkloadNames() {
  return {"smoke", "easy", "hard", "powerlaw"};
}

}  // namespace serve
}  // namespace dynmis
