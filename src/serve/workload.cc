#include "src/serve/workload.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include <unistd.h>

#include "src/graph/datasets.h"
#include "src/graph/generators.h"
#include "src/util/check.h"
#include "src/util/random.h"

namespace dynmis {
namespace serve {
namespace {

// The "massive" edge-file parameters. Expected edge count is n * d / 2 =
// ~2.2M; the parameters are part of the cached file name below.
constexpr int kMassiveNodes = 200000;
constexpr double kMassiveAvgDegree = 22.0;
constexpr double kMassiveBeta = 2.3;
constexpr uint64_t kMassiveSeed = 9;

EdgeListGraph NamedDataset(const std::string& name) {
  const DatasetSpec* spec = FindDataset(name);
  DYNMIS_CHECK(spec != nullptr);
  return GenerateDataset(*spec);
}

// Returns the edge file the massive workload ingests, generating the
// default one under /tmp when neither the env override nor a previous
// generation provides it. Generation writes to a pid-suffixed temp name and
// renames, so two processes racing to warm the cache (a server and a load
// generator started together) never ingest a half-written file.
std::string MassiveEdgeFile() {
  const char* env = std::getenv("DYNMIS_MASSIVE_EDGES");
  if (env != nullptr && env[0] != '\0') return env;
  const std::string path = "/tmp/dynmis-massive-n200000-d22-b2.3-s9.txt";
  if (std::ifstream(path).good()) return path;
  const std::string staging = path + ".tmp." + std::to_string(getpid());
  std::string error;
  DYNMIS_CHECK(ingest::GeneratePowerLawEdgeFile(
                   staging, kMassiveNodes, kMassiveAvgDegree, kMassiveBeta,
                   kMassiveSeed, &error) >= 0);
  DYNMIS_CHECK(std::rename(staging.c_str(), path.c_str()) == 0);
  return path;
}

}  // namespace

EdgeListGraph BuildMassiveWorkloadGraph(ingest::IngestReport* report) {
  EdgeListGraph graph;
  ingest::IngestReport local;
  std::string error;
  if (!ingest::IngestEdgeList(MassiveEdgeFile(), &graph,
                              report != nullptr ? report : &local, &error)) {
    std::fprintf(stderr, "massive workload: %s\n", error.c_str());
    DYNMIS_CHECK(false);
  }
  return graph;
}

ingest::TemporalStreamOptions ServeWorkloadWindow(const std::string& name) {
  ingest::TemporalStreamOptions window;
  if (name == "temporal") {
    window.ttl_ticks = 4096;
    window.inserts_per_tick = 2;
    window.seed = 47;
  } else if (name == "storm") {
    window.storm = true;
    window.ttl_ticks = 4096;
    window.storm_burst = 512;
    window.storm_period = 128;
    window.seed = 53;
  } else {
    DYNMIS_CHECK(false);
  }
  return window;
}

EdgeListGraph BuildServeWorkloadGraph(const std::string& name) {
  if (name == "smoke") {
    Rng rng(4242);
    return ChungLuPowerLaw(1500, 2.3, 8.0, &rng);
  }
  if (name == "easy") return NamedDataset("web-Google");
  if (name == "hard") return NamedDataset("soc-pokec");
  if (name == "powerlaw") {
    Rng rng(777);
    return PowerLawRandomGraph(12000, 2.3, 2, 120, &rng);
  }
  if (name == "massive") return BuildMassiveWorkloadGraph(nullptr);
  if (name == "temporal" || name == "storm") {
    // Mid-size base for the sliding-window scenarios: the interesting churn
    // is the TTL-expiry stream, not the base graph.
    Rng rng(5150);
    return ChungLuPowerLaw(20000, 2.3, 8.0, &rng);
  }
  DYNMIS_CHECK(false);
  return {};
}

UpdateStreamOptions ServeWorkloadStream(const std::string& name) {
  UpdateStreamOptions stream;
  if (name == "smoke") {
    stream.seed = 17;
  } else if (name == "easy") {
    stream.seed = 23;
  } else if (name == "hard") {
    stream.seed = 29;
    stream.bias = EndpointBias::kDegreeProportional;
  } else if (name == "powerlaw") {
    stream.seed = 31;
  } else if (name == "massive") {
    stream.seed = 37;
    stream.bias = EndpointBias::kDegreeProportional;
  } else if (name == "temporal" || name == "storm") {
    // Insert-only edge churn: when a server runs these with a TTL window,
    // every deletion is a server-side expiry, so the client stream stays
    // pure inserts (MakeTemporalSequence pre-draws the expiring variant for
    // the bench driver).
    stream.edge_op_fraction = 1.0;
    stream.insert_fraction = 1.0;
    stream.seed = name == "temporal" ? 41 : 43;
  } else {
    DYNMIS_CHECK(false);
  }
  return stream;
}

bool BuildServeWorkload(const std::string& name, ServeWorkload* out) {
  *out = ServeWorkload();
  out->name = name;
  bool known = false;
  for (const std::string& candidate : ServeWorkloadNames()) {
    if (candidate == name) known = true;
  }
  if (!known) return false;
  out->base = BuildServeWorkloadGraph(name);
  out->stream = ServeWorkloadStream(name);
  // Sizing mirrors the bench scenarios: light churn is ~m/10 (easy), heavy
  // churn ~m/2 (hard); the generated graphs use fixed counts.
  if (name == "smoke") {
    out->default_updates = 2000;
  } else if (name == "easy") {
    out->default_updates = static_cast<int>(out->base.NumEdges() / 10);
  } else if (name == "hard") {
    out->default_updates = static_cast<int>(out->base.NumEdges() / 2);
  } else if (name == "massive") {
    // Light churn: the scenario's point is serving a graph of this size,
    // not the stream volume.
    out->default_updates = static_cast<int>(out->base.NumEdges() / 50);
  } else {
    out->default_updates = 20000;
  }
  return true;
}

std::vector<std::string> ServeWorkloadNames() {
  return {"smoke", "easy", "hard", "powerlaw", "massive", "temporal", "storm"};
}

}  // namespace serve
}  // namespace dynmis
