// Minimal blocking client for the serve layer's newline protocol, shared
// by dynmis_loadgen and the loopback end-to-end tests so the two sides of
// CI exercise the identical framing code. Header-only; POSIX sockets.
// Intentionally not part of the server: the server's non-blocking framing
// is LineBuffer (protocol.h) — this is the *client* half.

#ifndef DYNMIS_SRC_SERVE_LINE_CLIENT_H_
#define DYNMIS_SRC_SERVE_LINE_CLIENT_H_

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <string>

namespace dynmis {
namespace serve {

class LineClient {
 public:
  LineClient() = default;
  ~LineClient() { Close(); }

  LineClient(const LineClient&) = delete;
  LineClient& operator=(const LineClient&) = delete;

  bool Connect(const std::string& host, int port, std::string* error) {
    fd_ = socket(AF_INET, SOCK_STREAM, 0);
    if (fd_ < 0) {
      *error = std::string("socket: ") + std::strerror(errno);
      return false;
    }
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
      *error = "bad address: " + host;
      return false;
    }
    if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      *error = std::string("connect: ") + std::strerror(errno);
      return false;
    }
    const int one = 1;
    setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    return true;
  }

  bool SendAll(const std::string& data) {
    size_t off = 0;
    while (off < data.size()) {
      const ssize_t n =
          send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return false;
      }
      off += static_cast<size_t>(n);
    }
    return true;
  }

  // Appends a newline and sends.
  bool SendLine(const std::string& line) { return SendAll(line + "\n"); }

  // Blocking read of the next response line (LF-terminated, LF stripped).
  // Returns false once the peer closed or errored.
  bool ReadLine(std::string* line) {
    for (;;) {
      const size_t eol = buffer_.find('\n', pos_);
      if (eol != std::string::npos) {
        *line = buffer_.substr(pos_, eol - pos_);
        pos_ = eol + 1;
        Compact();
        return true;
      }
      char chunk[4096];
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  // Request/response convenience.
  bool Ask(const std::string& request, std::string* response) {
    return SendLine(request) && ReadLine(response);
  }

  // Blocking read of the next length-prefixed binary frame (after a
  // `HELLO 2 BIN` upgrade). `frame` receives payload bytes — the response
  // code byte plus body, without the u32 length prefix. Returns false on
  // peer close/error or a frame longer than max_frame.
  bool ReadFrame(std::string* frame, size_t max_frame = 1 << 20) {
    for (;;) {
      if (buffer_.size() - pos_ >= 4) {
        const auto* p =
            reinterpret_cast<const unsigned char*>(buffer_.data() + pos_);
        const uint32_t len = static_cast<uint32_t>(p[0]) |
                             static_cast<uint32_t>(p[1]) << 8 |
                             static_cast<uint32_t>(p[2]) << 16 |
                             static_cast<uint32_t>(p[3]) << 24;
        if (len == 0 || len > max_frame) return false;
        if (buffer_.size() - pos_ >= 4 + static_cast<size_t>(len)) {
          frame->assign(buffer_, pos_ + 4, len);
          pos_ += 4 + static_cast<size_t>(len);
          Compact();
          return true;
        }
      }
      char chunk[4096];
      const ssize_t n = recv(fd_, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && errno == EINTR) continue;
        return false;
      }
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

  // Half-close: no more requests, but responses are still expected.
  void ShutdownWrite() { shutdown(fd_, SHUT_WR); }

  void Close() {
    if (fd_ >= 0) close(fd_);
    fd_ = -1;
  }

  int fd() const { return fd_; }

 private:
  // Eager compaction keeps the buffer's capacity bounded (and therefore
  // stable after a short warm-up — the soak test counts allocations through
  // this path), at the cost of a small memmove every few KB.
  void Compact() {
    if (pos_ > 4096 && pos_ >= buffer_.size() - pos_) {
      buffer_.erase(0, pos_);
      pos_ = 0;
    }
  }

  int fd_ = -1;
  std::string buffer_;
  size_t pos_ = 0;
};

}  // namespace serve
}  // namespace dynmis

#endif  // DYNMIS_SRC_SERVE_LINE_CLIENT_H_
