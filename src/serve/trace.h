// Serve traces: the update-trace syntax of update_trace_io.h plus one
// convention — a `# batch K` comment precedes each flushed transaction's K
// ops, so a replayer can reproduce the server's exact ApplyBatch partition
// (a maintainer's final solution depends on where the transactions ended,
// not just on the op sequence). Plain trace loaders skip the comments and
// see the ops. Writer and parser live together here so the convention has
// exactly one home; the server's TRACE command, the loadgen's replay check
// and the e2e tests all go through it.

#ifndef DYNMIS_SRC_SERVE_TRACE_H_
#define DYNMIS_SRC_SERVE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/graph/update_stream.h"

namespace dynmis {
namespace serve {

struct ServeTrace {
  std::vector<GraphUpdate> updates;
  // ApplyBatch partition, in order; sums to updates.size().
  std::vector<int64_t> batch_sizes;
};

// Writes `trace` to `path`. Requires the batch sizes to cover the ops
// exactly. Returns false on I/O failure.
bool WriteServeTrace(const ServeTrace& trace, const std::string& path);

// Parses a file written by WriteServeTrace. Returns false with `*error`
// set when the file is unreadable, malformed, or its `# batch` boundaries
// do not cover the op sequence exactly.
bool LoadServeTrace(const std::string& path, ServeTrace* out,
                    std::string* error);

}  // namespace serve
}  // namespace dynmis

#endif  // DYNMIS_SRC_SERVE_TRACE_H_
