// Named serving workloads: scenario base graphs and stream parameters,
// shared by name so a server and a load generator in *different processes*
// can agree on the same base graph and update distribution. Generation is
// seeded and deterministic, so "--scenario hard" builds bit-identical
// graphs on both sides of the socket.
//
// This file is the single definition of the scenario generator parameters
// and stream seeds: bench/bench_driver.cc composes its scenarios from
// BuildServeWorkloadGraph/ServeWorkloadStream, so bench numbers and served
// numbers are measured on the same graphs by construction.

#ifndef DYNMIS_SRC_SERVE_WORKLOAD_H_
#define DYNMIS_SRC_SERVE_WORKLOAD_H_

#include <string>
#include <vector>

#include "src/graph/edge_list.h"
#include "src/graph/update_stream.h"
#include "src/ingest/ingest.h"
#include "src/ingest/temporal.h"

namespace dynmis {
namespace serve {

struct ServeWorkload {
  std::string name;
  EdgeListGraph base;
  UpdateStreamOptions stream;
  // Default total update count across all connections (before any
  // client-side override); mirrors the bench scenario's sizing.
  int default_updates = 0;
};

// Builds the named workload (smoke / easy / hard / powerlaw / massive /
// temporal / storm). Returns false on an unknown name.
bool BuildServeWorkload(const std::string& name, ServeWorkload* out);

// The two pieces both sides must agree on, individually — the bench driver
// composes its scenarios from these, so the generator parameters and
// stream seeds have exactly one definition. Both CHECK on unknown names.
EdgeListGraph BuildServeWorkloadGraph(const std::string& name);
UpdateStreamOptions ServeWorkloadStream(const std::string& name);

// The "massive" graph with its ingest report: a >= 2M-edge power-law edge
// file pushed through the streaming ingester. The file is
// $DYNMIS_MASSIVE_EDGES when set (CI generates one with `dynmis_cli
// genedges`); otherwise a deterministic file is generated under /tmp on
// first use (the parameters are baked into the cached file's name, so a
// stale cache is impossible). BuildServeWorkloadGraph("massive") is this
// with the report discarded.
EdgeListGraph BuildMassiveWorkloadGraph(ingest::IngestReport* report);

// Sliding-window stream parameters for the temporal scenarios ("temporal"
// and "storm"); the bench driver feeds these to MakeTemporalSequence.
// CHECKs on other names.
ingest::TemporalStreamOptions ServeWorkloadWindow(const std::string& name);

// The accepted names, for --help text.
std::vector<std::string> ServeWorkloadNames();

}  // namespace serve
}  // namespace dynmis

#endif  // DYNMIS_SRC_SERVE_WORKLOAD_H_
