// faultfs: a deterministic fault-injection seam over the file and socket
// syscalls the durability paths depend on (write/fsync/rename/connect).
//
// Production code calls the wrappers below unconditionally. When no plan is
// armed — the only state release builds ever see — each wrapper is a single
// predicted branch on one relaxed atomic load in front of the raw syscall:
// no allocation, no lock, no extra syscall. Tests and tools arm a *plan*
// (programmatically or via the DYNMIS_FAULT_PLAN environment variable /
// `--fault-plan`) that scripts exactly which calls fail and how, so crash
// and error paths become deterministic unit-test subjects instead of
// hope-it-never-happens code.
//
// Plan grammar (whitespace-free; rules separated by ';'):
//
//   plan := rule (';' rule)*
//   rule := op ':' mode ['@' nth] ['x' count] ['~' substr]
//
//   op     write | fsync | rename | connect
//   mode   enospc  fail with ENOSPC (write)
//          eio     fail with EIO (write/fsync/rename)
//          eintr   fail with EINTR (write/fsync) — loops must retry
//          short   write only half the buffer (write) — loops must resume
//          reset   fail with ECONNREFUSED (connect)
//          torn    _exit(86) *before* the syscall: simulates dying between
//                  a tmp write and its rename (or mid-record). The process
//                  does not return.
//   nth    1-based index among calls matching this rule (default 1)
//   count  consecutive matching calls faulted from nth on; 0 = every one
//          from nth on (default 1)
//   substr only calls whose tag (usually the target path) contains this
//          substring match the rule
//
// Examples:
//   fsync:eio@2            second fsync anywhere fails with EIO
//   write:enospc@5x0~seg-  every segment write from the 5th on hits ENOSPC
//   rename:torn~.snap      die just before publishing a snapshot rename
//   connect:reset@1x3      first three connect attempts are refused

#ifndef DYNMIS_SRC_UTIL_FAULTFS_H_
#define DYNMIS_SRC_UTIL_FAULTFS_H_

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>

namespace dynmis {
namespace faultfs {

enum class Op : int { kWrite = 0, kFsync = 1, kRename = 2, kConnect = 3 };
inline constexpr int kNumOps = 4;

// Exit status used by `torn` (crash-before-syscall) injections, so harnesses
// can tell a scripted crash from a genuine failure.
inline constexpr int kCrashExitCode = 86;

struct OpCounters {
  int64_t calls = 0;   // Calls routed through the armed slow path.
  int64_t faults = 0;  // Calls that had a fault injected.
};

// Parses and arms `plan`. Replaces any previously armed plan. Returns false
// (nothing armed) with *error set on a malformed plan.
bool ArmPlan(const std::string& plan, std::string* error);

// Arms DYNMIS_FAULT_PLAN when the variable is set and non-empty. Returns
// false only on a malformed plan; an unset variable is a no-op success.
bool ArmFromEnvironment(std::string* error);

// Disarms all rules; wrappers go back to the raw-syscall fast path.
void Disarm();

bool armed();
int64_t FaultsInjected();
OpCounters CountersFor(Op op);

namespace internal {

extern std::atomic<bool> g_armed;

ssize_t ArmedWrite(int fd, const void* buf, size_t count, const char* tag);
int ArmedFsync(int fd, const char* tag);
int ArmedRename(const char* oldpath, const char* newpath);
int ArmedConnect(int fd, const struct sockaddr* addr, socklen_t len,
                 const char* tag);

inline bool Armed() {
  return __builtin_expect(g_armed.load(std::memory_order_relaxed), 0);
}

}  // namespace internal

// `tag` names the target for plan matching (usually the destination path;
// nullptr matches only substring-free rules). Return values and errno follow
// the underlying syscall's conventions exactly.

inline ssize_t Write(int fd, const void* buf, size_t count,
                     const char* tag = nullptr) {
  if (!internal::Armed()) return ::write(fd, buf, count);
  return internal::ArmedWrite(fd, buf, count, tag);
}

inline int Fsync(int fd, const char* tag = nullptr) {
  if (!internal::Armed()) return ::fsync(fd);
  return internal::ArmedFsync(fd, tag);
}

inline int Rename(const char* oldpath, const char* newpath) {
  if (!internal::Armed()) return std::rename(oldpath, newpath);
  return internal::ArmedRename(oldpath, newpath);
}

inline int Connect(int fd, const struct sockaddr* addr, socklen_t len,
                   const char* tag = nullptr) {
  if (!internal::Armed()) return ::connect(fd, addr, len);
  return internal::ArmedConnect(fd, addr, len, tag);
}

}  // namespace faultfs
}  // namespace dynmis

#endif  // DYNMIS_SRC_UTIL_FAULTFS_H_
