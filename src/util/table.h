// Fixed-width text table formatting for paper-style output.
//
// The benchmark harness prints rows that mirror the paper's tables (Table
// I-IV) and figure series. TablePrinter right-pads headers and cells into
// aligned columns; values can be added as strings, integers or doubles.

#ifndef DYNMIS_SRC_UTIL_TABLE_H_
#define DYNMIS_SRC_UTIL_TABLE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dynmis {

// Accumulates rows of string cells and renders them with aligned columns.
// Example:
//   TablePrinter t({"Graph", "n", "m"});
//   t.AddRow({"Epinions", "75879", "405740"});
//   t.Print(stdout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Appends a data row; must have as many cells as there are headers.
  void AddRow(std::vector<std::string> cells);

  // Renders the table (header, separator, rows) to `out`.
  void Print(std::FILE* out) const;

  // Renders the table as comma-separated values (no alignment padding).
  void PrintCsv(std::FILE* out) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `digits` digits after the decimal point.
std::string FormatDouble(double value, int digits);

// Formats a fraction as a percentage string, e.g. 0.9987 -> "99.87%".
std::string FormatPercent(double fraction, int digits = 2);

// Formats a byte count with a binary unit suffix, e.g. "12.3 MiB".
std::string FormatBytes(uint64_t bytes);

// Formats an integer with thousands separators, e.g. 1234567 -> "1,234,567".
std::string FormatCount(int64_t value);

}  // namespace dynmis

#endif  // DYNMIS_SRC_UTIL_TABLE_H_
