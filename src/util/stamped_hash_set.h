// StampedHashSet: an open-addressed set of 64-bit keys whose Clear() is
// O(1) — slots are validated by a generation stamp instead of being wiped,
// the same epoch trick the algorithm layers use for vertex marks. This is
// the allocation-free replacement for the per-update std::unordered_set
// the k-swap maintainer used to build for swap-set deduplication: once the
// table has grown to the workload's high-water mark, Insert/Clear touch no
// allocator at all.

#ifndef DYNMIS_SRC_UTIL_STAMPED_HASH_SET_H_
#define DYNMIS_SRC_UTIL_STAMPED_HASH_SET_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/memory.h"

namespace dynmis {

class StampedHashSet {
 public:
  // Empties the set in O(1), keeping the table storage.
  void Clear() {
    if (++gen_ == 0) {
      // Generation counter wrapped: stamps from 2^32 clears ago could alias,
      // so invalidate them explicitly (once in a blue moon).
      std::fill(stamp_.begin(), stamp_.end(), 0u);
      gen_ = 1;
    }
    size_ = 0;
  }

  // Inserts `key`; returns true when it was not yet present.
  bool Insert(uint64_t key) {
    if (slot_.empty()) Rehash(kInitialSlots);
    size_t i = static_cast<size_t>(key) & mask_;
    while (stamp_[i] == gen_) {
      if (slot_[i] == key) return false;
      i = (i + 1) & mask_;
    }
    slot_[i] = key;
    stamp_[i] = gen_;
    ++size_;
    if (size_ * 10 >= slot_.size() * 7) Rehash(2 * slot_.size());
    return true;
  }

  size_t size() const { return size_; }

  size_t MemoryUsageBytes() const {
    return VectorBytes(slot_) + VectorBytes(stamp_);
  }

 private:
  static constexpr size_t kInitialSlots = 256;  // Power of two.

  void Rehash(size_t new_slots) {
    std::vector<uint64_t> old_slot = std::move(slot_);
    std::vector<uint32_t> old_stamp = std::move(stamp_);
    slot_.assign(new_slots, 0);
    stamp_.assign(new_slots, 0);
    mask_ = new_slots - 1;
    size_ = 0;
    for (size_t i = 0; i < old_slot.size(); ++i) {
      if (old_stamp[i] == gen_) Insert(old_slot[i]);
    }
  }

  std::vector<uint64_t> slot_;
  std::vector<uint32_t> stamp_;
  uint32_t gen_ = 1;
  size_t mask_ = 0;
  size_t size_ = 0;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_UTIL_STAMPED_HASH_SET_H_
