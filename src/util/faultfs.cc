#include "src/util/faultfs.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace dynmis {
namespace faultfs {
namespace {

enum class Mode { kEnospc, kEio, kEintr, kShort, kReset, kTorn };

struct Rule {
  Op op = Op::kWrite;
  Mode mode = Mode::kEio;
  int64_t nth = 1;    // 1-based index among matching calls.
  int64_t count = 1;  // Consecutive faults from nth; 0 = unbounded.
  std::string substr;
  int64_t seen = 0;  // Matching calls observed so far.
};

// All armed-path state lives behind one mutex: the slow path only exists
// while a test has armed a plan, so contention is irrelevant and simplicity
// wins (the snapshotter thread and the event loop both reach this).
std::mutex g_mutex;
std::vector<Rule> g_rules;
int64_t g_calls[kNumOps] = {0, 0, 0, 0};
int64_t g_faults[kNumOps] = {0, 0, 0, 0};

bool ParseOp(const std::string& text, Op* op) {
  if (text == "write") {
    *op = Op::kWrite;
  } else if (text == "fsync") {
    *op = Op::kFsync;
  } else if (text == "rename") {
    *op = Op::kRename;
  } else if (text == "connect") {
    *op = Op::kConnect;
  } else {
    return false;
  }
  return true;
}

bool ParseMode(const std::string& text, Mode* mode) {
  if (text == "enospc") {
    *mode = Mode::kEnospc;
  } else if (text == "eio") {
    *mode = Mode::kEio;
  } else if (text == "eintr") {
    *mode = Mode::kEintr;
  } else if (text == "short") {
    *mode = Mode::kShort;
  } else if (text == "reset") {
    *mode = Mode::kReset;
  } else if (text == "torn") {
    *mode = Mode::kTorn;
  } else {
    return false;
  }
  return true;
}

bool ParseRule(const std::string& text, Rule* rule, std::string* error) {
  // op ':' mode ['@' nth] ['x' count] ['~' substr]
  const size_t colon = text.find(':');
  if (colon == std::string::npos) {
    if (error != nullptr) *error = "fault rule missing ':': " + text;
    return false;
  }
  if (!ParseOp(text.substr(0, colon), &rule->op)) {
    if (error != nullptr) *error = "unknown fault op in rule: " + text;
    return false;
  }
  size_t end = text.size();
  const size_t tilde = text.find('~', colon + 1);
  if (tilde != std::string::npos) {
    rule->substr = text.substr(tilde + 1);
    end = tilde;
  }
  size_t mode_end = end;
  const size_t at = text.find('@', colon + 1);
  const size_t x = text.find('x', colon + 1);
  if (at != std::string::npos && at < mode_end) mode_end = at;
  if (x != std::string::npos && x < mode_end) mode_end = x;
  if (!ParseMode(text.substr(colon + 1, mode_end - colon - 1), &rule->mode)) {
    if (error != nullptr) *error = "unknown fault mode in rule: " + text;
    return false;
  }
  const auto parse_int = [&](size_t from, size_t to, int64_t* out) {
    if (from >= to) return false;
    int64_t value = 0;
    for (size_t i = from; i < to; ++i) {
      if (text[i] < '0' || text[i] > '9') return false;
      value = value * 10 + (text[i] - '0');
    }
    *out = value;
    return true;
  };
  if (at != std::string::npos && at < end) {
    const size_t stop = (x != std::string::npos && x < end && x > at) ? x : end;
    if (!parse_int(at + 1, stop, &rule->nth) || rule->nth < 1) {
      if (error != nullptr) *error = "bad @nth in fault rule: " + text;
      return false;
    }
  }
  if (x != std::string::npos && x < end) {
    if (!parse_int(x + 1, end, &rule->count)) {
      if (error != nullptr) *error = "bad xcount in fault rule: " + text;
      return false;
    }
  }
  return true;
}

// Decides whether this call faults, under g_mutex. Returns the matched mode.
bool ShouldFault(Op op, const char* tag, Mode* mode) {
  g_calls[static_cast<int>(op)]++;
  for (Rule& rule : g_rules) {
    if (rule.op != op) continue;
    if (!rule.substr.empty() &&
        (tag == nullptr || std::strstr(tag, rule.substr.c_str()) == nullptr)) {
      continue;
    }
    rule.seen++;
    if (rule.seen < rule.nth) continue;
    if (rule.count > 0 && rule.seen >= rule.nth + rule.count) continue;
    *mode = rule.mode;
    g_faults[static_cast<int>(op)]++;
    return true;
  }
  return false;
}

}  // namespace

namespace internal {

std::atomic<bool> g_armed{false};

ssize_t ArmedWrite(int fd, const void* buf, size_t count, const char* tag) {
  Mode mode;
  bool fault;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    fault = ShouldFault(Op::kWrite, tag, &mode);
  }
  if (!fault) return ::write(fd, buf, count);
  switch (mode) {
    case Mode::kEnospc:
      errno = ENOSPC;
      return -1;
    case Mode::kEintr:
      errno = EINTR;
      return -1;
    case Mode::kShort:
      if (count >= 2) return ::write(fd, buf, count / 2);
      errno = EINTR;
      return -1;
    case Mode::kTorn:
      _exit(kCrashExitCode);
    case Mode::kEio:
    case Mode::kReset:
      errno = EIO;
      return -1;
  }
  errno = EIO;
  return -1;
}

int ArmedFsync(int fd, const char* tag) {
  Mode mode;
  bool fault;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    fault = ShouldFault(Op::kFsync, tag, &mode);
  }
  if (!fault) return ::fsync(fd);
  switch (mode) {
    case Mode::kEintr:
      errno = EINTR;
      return -1;
    case Mode::kTorn:
      _exit(kCrashExitCode);
    default:
      errno = EIO;
      return -1;
  }
}

int ArmedRename(const char* oldpath, const char* newpath) {
  Mode mode;
  bool fault;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    // Match against the destination: that is the name callers publish.
    fault = ShouldFault(Op::kRename, newpath, &mode);
  }
  if (!fault) return std::rename(oldpath, newpath);
  if (mode == Mode::kTorn) _exit(kCrashExitCode);
  errno = EIO;
  return -1;
}

int ArmedConnect(int fd, const struct sockaddr* addr, socklen_t len,
                 const char* tag) {
  Mode mode;
  bool fault;
  {
    std::lock_guard<std::mutex> lock(g_mutex);
    fault = ShouldFault(Op::kConnect, tag, &mode);
  }
  if (!fault) return ::connect(fd, addr, len);
  if (mode == Mode::kTorn) _exit(kCrashExitCode);
  errno = ECONNREFUSED;
  return -1;
}

}  // namespace internal

bool ArmPlan(const std::string& plan, std::string* error) {
  std::vector<Rule> rules;
  size_t pos = 0;
  while (pos < plan.size()) {
    size_t semi = plan.find(';', pos);
    if (semi == std::string::npos) semi = plan.size();
    if (semi > pos) {
      Rule rule;
      if (!ParseRule(plan.substr(pos, semi - pos), &rule, error)) return false;
      rules.push_back(std::move(rule));
    }
    pos = semi + 1;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  g_rules = std::move(rules);
  for (int i = 0; i < kNumOps; ++i) g_calls[i] = g_faults[i] = 0;
  internal::g_armed.store(!g_rules.empty(), std::memory_order_relaxed);
  return true;
}

bool ArmFromEnvironment(std::string* error) {
  const char* plan = std::getenv("DYNMIS_FAULT_PLAN");
  if (plan == nullptr || plan[0] == '\0') return true;
  return ArmPlan(plan, error);
}

void Disarm() {
  std::lock_guard<std::mutex> lock(g_mutex);
  internal::g_armed.store(false, std::memory_order_relaxed);
  g_rules.clear();
}

bool armed() { return internal::g_armed.load(std::memory_order_relaxed); }

int64_t FaultsInjected() {
  std::lock_guard<std::mutex> lock(g_mutex);
  int64_t total = 0;
  for (int i = 0; i < kNumOps; ++i) total += g_faults[i];
  return total;
}

OpCounters CountersFor(Op op) {
  std::lock_guard<std::mutex> lock(g_mutex);
  OpCounters counters;
  counters.calls = g_calls[static_cast<int>(op)];
  counters.faults = g_faults[static_cast<int>(op)];
  return counters;
}

}  // namespace faultfs
}  // namespace dynmis
