// Wall-clock timing helpers used by the benchmark harness.

#ifndef DYNMIS_SRC_UTIL_TIMER_H_
#define DYNMIS_SRC_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace dynmis {

// Measures elapsed wall-clock time with steady_clock. Starts on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  // Restarts the timer.
  void Reset() { start_ = Clock::now(); }

  // Returns seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  // Returns milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  // Returns microseconds elapsed since construction or the last Reset().
  int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_UTIL_TIMER_H_
