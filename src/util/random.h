// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through Rng so that every experiment,
// generator and algorithm run is reproducible from a single 64-bit seed.
// The generator is xoshiro256** seeded via splitmix64 (Blackman & Vigna).

#ifndef DYNMIS_SRC_UTIL_RANDOM_H_
#define DYNMIS_SRC_UTIL_RANDOM_H_

#include <cstdint>

#include "src/util/check.h"

namespace dynmis {

// Mixes a 64-bit value into a well-distributed 64-bit value. Used for seeding
// and for cheap stateless hashing of ids.
inline uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

// Small, fast, reproducible RNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x853c49e6748fea9bULL) { Seed(seed); }

  // Re-seeds the full state from a single 64-bit value.
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& word : state_) {
      x = SplitMix64(x);
      word = x;
    }
  }

  // Returns a uniformly distributed 64-bit value.
  uint64_t NextU64() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  // Returns a uniform integer in [0, bound). `bound` must be positive.
  // Uses Lemire's multiply-shift rejection method.
  uint64_t NextBounded(uint64_t bound) {
    DYNMIS_CHECK_GT(bound, 0u);
    uint64_t x = NextU64();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    uint64_t low = static_cast<uint64_t>(m);
    if (low < bound) {
      uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = NextU64();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<uint64_t>(m);
      }
    }
    return static_cast<uint64_t>(m >> 64);
  }

  // Returns a uniform int in [lo, hi] inclusive.
  int64_t NextInRange(int64_t lo, int64_t hi) {
    DYNMIS_CHECK_LE(lo, hi);
    return lo + static_cast<int64_t>(
                    NextBounded(static_cast<uint64_t>(hi - lo) + 1));
  }

  // Returns a uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  // Returns true with probability `p` (clamped to [0, 1]).
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  uint64_t state_[4];
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_UTIL_RANDOM_H_
