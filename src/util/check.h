// Lightweight assertion macros.
//
// The project does not use exceptions (see DESIGN.md / style guide); internal
// invariant violations are programming errors and abort the process with a
// source location. DYNMIS_CHECK is always on; DYNMIS_DCHECK compiles away in
// NDEBUG builds and is used on hot paths.

#ifndef DYNMIS_SRC_UTIL_CHECK_H_
#define DYNMIS_SRC_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace dynmis {
namespace internal {

[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line) {
  std::fprintf(stderr, "DYNMIS_CHECK failed: %s at %s:%d\n", expr, file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace dynmis

#define DYNMIS_CHECK(cond)                                    \
  do {                                                        \
    if (!(cond)) {                                            \
      ::dynmis::internal::CheckFailed(#cond, __FILE__, __LINE__); \
    }                                                         \
  } while (0)

#define DYNMIS_CHECK_EQ(a, b) DYNMIS_CHECK((a) == (b))
#define DYNMIS_CHECK_NE(a, b) DYNMIS_CHECK((a) != (b))
#define DYNMIS_CHECK_LT(a, b) DYNMIS_CHECK((a) < (b))
#define DYNMIS_CHECK_LE(a, b) DYNMIS_CHECK((a) <= (b))
#define DYNMIS_CHECK_GT(a, b) DYNMIS_CHECK((a) > (b))
#define DYNMIS_CHECK_GE(a, b) DYNMIS_CHECK((a) >= (b))

#ifdef NDEBUG
#define DYNMIS_DCHECK(cond) \
  do {                      \
  } while (0)
#else
#define DYNMIS_DCHECK(cond) DYNMIS_CHECK(cond)
#endif

#endif  // DYNMIS_SRC_UTIL_CHECK_H_
