// Capacity-based memory accounting helpers.
//
// The paper's memory-usage experiments (Fig 5(b), 6(b), 7(b)) compare the
// sizes of the algorithmic data structures. We account memory explicitly:
// every component exposes MemoryUsageBytes() built from these helpers. This
// is deterministic and portable, unlike sampling the allocator.

#ifndef DYNMIS_SRC_UTIL_MEMORY_H_
#define DYNMIS_SRC_UTIL_MEMORY_H_

#include <cstddef>
#include <unordered_map>
#include <vector>

namespace dynmis {

// Bytes held by a std::vector's heap buffer (capacity, not size).
template <typename T>
size_t VectorBytes(const std::vector<T>& v) {
  return v.capacity() * sizeof(T);
}

// Bytes held by a vector of vectors, including the outer buffer.
template <typename T>
size_t NestedVectorBytes(const std::vector<std::vector<T>>& v) {
  size_t total = v.capacity() * sizeof(std::vector<T>);
  for (const auto& inner : v) total += inner.capacity() * sizeof(T);
  return total;
}

// Approximate bytes held by an unordered_map: nodes plus bucket array.
template <typename K, typename V, typename H, typename E, typename A>
size_t UnorderedMapBytes(const std::unordered_map<K, V, H, E, A>& m) {
  // Each node stores the pair, a next pointer and the cached hash.
  const size_t node_bytes = sizeof(std::pair<const K, V>) + 2 * sizeof(void*);
  return m.size() * node_bytes + m.bucket_count() * sizeof(void*);
}

}  // namespace dynmis

#endif  // DYNMIS_SRC_UTIL_MEMORY_H_
