#include "src/util/table.h"

#include <cinttypes>
#include <cstdio>

#include "src/util/check.h"

namespace dynmis {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  DYNMIS_CHECK(!headers_.empty());
}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  DYNMIS_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::FILE* out) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (row[c].size() > widths[c]) widths[c] = row[c].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%-*s", static_cast<int>(widths[c] + 2),
                   row[c].c_str());
    }
    std::fprintf(out, "\n");
  };
  print_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  std::string sep(total, '-');
  std::fprintf(out, "%s\n", sep.c_str());
  for (const auto& row : rows_) print_row(row);
}

void TablePrinter::PrintCsv(std::FILE* out) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%s%s", row[c].c_str(),
                   c + 1 == row.size() ? "\n" : ",");
    }
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
  return buf;
}

std::string FormatPercent(double fraction, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, fraction * 100.0);
  return buf;
}

std::string FormatBytes(uint64_t bytes) {
  const char* units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  int unit = 0;
  while (value >= 1024.0 && unit < 4) {
    value /= 1024.0;
    ++unit;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f %s", value, units[unit]);
  return buf;
}

std::string FormatCount(int64_t value) {
  char digits[32];
  std::snprintf(digits, sizeof(digits), "%" PRId64, value < 0 ? -value : value);
  std::string body(digits);
  std::string with_commas;
  int count = 0;
  for (auto it = body.rbegin(); it != body.rend(); ++it) {
    if (count != 0 && count % 3 == 0) with_commas.push_back(',');
    with_commas.push_back(*it);
    ++count;
  }
  if (value < 0) with_commas.push_back('-');
  return std::string(with_commas.rbegin(), with_commas.rend());
}

}  // namespace dynmis
