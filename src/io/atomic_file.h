// Crash-safe whole-file publication: write a sibling `.tmp`, fsync it,
// rename over the final name, fsync the directory. A reader never observes
// a half-written file — it sees either the old content or the new one —
// and a crash at any point leaves at worst a stale `.tmp` beside intact
// data. All syscalls route through the faultfs seam so tests can script
// ENOSPC, fsync EIO, and torn-rename crashes against this exact path.

#ifndef DYNMIS_SRC_IO_ATOMIC_FILE_H_
#define DYNMIS_SRC_IO_ATOMIC_FILE_H_

#include <string>

namespace dynmis {
namespace io {

// Durably replaces `path` with `bytes`. On failure returns false with
// *error set and removes the temp file (when the process survives to do
// so — a crash can leave `path + ".tmp"` behind, which is why startup
// scans ignore and clean stale `.tmp` names).
bool WriteFileAtomic(const std::string& path, const std::string& bytes,
                     std::string* error);

// fsyncs the directory containing already-renamed entries (publication
// durability point). Exposed for callers that batch several renames.
bool SyncDir(const std::string& dir, std::string* error);

}  // namespace io
}  // namespace dynmis

#endif  // DYNMIS_SRC_IO_ATOMIC_FILE_H_
