#include "src/io/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/util/faultfs.h"

namespace dynmis {
namespace io {
namespace {

bool SetErrno(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
  return false;
}

}  // namespace

bool SyncDir(const std::string& dir, std::string* error) {
  const int fd = open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return SetErrno(error, "open dir " + dir);
  int rc;
  do {
    rc = faultfs::Fsync(fd, dir.c_str());
  } while (rc != 0 && errno == EINTR);
  close(fd);
  if (rc != 0) return SetErrno(error, "fsync dir " + dir);
  return true;
}

bool WriteFileAtomic(const std::string& path, const std::string& bytes,
                     std::string* error) {
  const std::string tmp_path = path + ".tmp";
  const int fd = open(tmp_path.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) return SetErrno(error, "open " + tmp_path);
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = faultfs::Write(fd, bytes.data() + off,
                                     bytes.size() - off, tmp_path.c_str());
    if (n < 0) {
      if (errno == EINTR) continue;
      SetErrno(error, "write " + tmp_path);
      close(fd);
      unlink(tmp_path.c_str());
      return false;
    }
    off += static_cast<size_t>(n);
  }
  int rc;
  do {
    rc = faultfs::Fsync(fd, tmp_path.c_str());
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    SetErrno(error, "fsync " + tmp_path);
    close(fd);
    unlink(tmp_path.c_str());
    return false;
  }
  close(fd);
  if (faultfs::Rename(tmp_path.c_str(), path.c_str()) != 0) {
    SetErrno(error, "rename " + tmp_path);
    unlink(tmp_path.c_str());
    return false;
  }
  const size_t slash = path.rfind('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  return SyncDir(dir, error);
}

}  // namespace io
}  // namespace dynmis
