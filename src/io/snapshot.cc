#include "src/io/snapshot.h"

#include <cstring>
#include <istream>
#include <ostream>

#include "src/util/check.h"

namespace dynmis {
namespace {

constexpr char kMagic[8] = {'D', 'Y', 'N', 'M', 'I', 'S', 'S', 'N'};
// A snapshot holds a handful of sections (engine, graph, one or two per
// maintainer); a five-digit count in the header is certainly corruption.
constexpr uint32_t kMaxSections = 4096;
constexpr size_t kMaxSectionNameLen = 512;
// Payloads stream in bounded chunks so a corrupt length field cannot force
// one huge allocation before truncation is detected.
constexpr size_t kReadChunk = 1 << 20;

void AppendLe(std::string* out, uint64_t value, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xff));
  }
}

uint64_t DecodeLe(const char* data, int bytes) {
  uint64_t value = 0;
  for (int i = 0; i < bytes; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(data[i]))
             << (8 * i);
  }
  return value;
}

bool ReadExact(std::istream& in, char* data, size_t size) {
  in.read(data, static_cast<std::streamsize>(size));
  return static_cast<size_t>(in.gcount()) == size;
}

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = ~seed;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

// --- SnapshotWriter ----------------------------------------------------------

void SnapshotWriter::BeginSection(const std::string& name) {
  DYNMIS_CHECK(!in_section_);
  DYNMIS_CHECK(!name.empty());
  std::string full = prefix_ + name;
  DYNMIS_CHECK(full.size() <= kMaxSectionNameLen);
  sections_.push_back(Section{std::move(full), {}});
  in_section_ = true;
}

void SnapshotWriter::EndSection() {
  DYNMIS_CHECK(in_section_);
  in_section_ = false;
}

void SnapshotWriter::PutU8(uint8_t value) {
  DYNMIS_CHECK(in_section_);
  AppendLe(&sections_.back().payload, value, 1);
}

void SnapshotWriter::PutU32(uint32_t value) {
  DYNMIS_CHECK(in_section_);
  AppendLe(&sections_.back().payload, value, 4);
}

void SnapshotWriter::PutU64(uint64_t value) {
  DYNMIS_CHECK(in_section_);
  AppendLe(&sections_.back().payload, value, 8);
}

void SnapshotWriter::PutDouble(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(bits);
}

void SnapshotWriter::PutString(const std::string& value) {
  PutU64(value.size());
  DYNMIS_CHECK(in_section_);
  sections_.back().payload.append(value);
}

void SnapshotWriter::PutI32Array(const std::vector<int32_t>& values) {
  PutU64(values.size());
  DYNMIS_CHECK(in_section_);
  // Bulk little-endian encode straight into the payload: i32 arrays are the
  // overwhelming bulk of a snapshot (graph + MisState), and save cost is
  // measured inside the bench driver's timed loop, so the per-byte
  // push_back of AppendLe would severalfold the reported durability tax.
  std::string& payload = sections_.back().payload;
  const size_t offset = payload.size();
  payload.resize(offset + 4 * values.size());
  char* out = payload.data() + offset;
  for (size_t i = 0; i < values.size(); ++i) {
    const uint32_t v = static_cast<uint32_t>(values[i]);
    out[4 * i + 0] = static_cast<char>(v);
    out[4 * i + 1] = static_cast<char>(v >> 8);
    out[4 * i + 2] = static_cast<char>(v >> 16);
    out[4 * i + 3] = static_cast<char>(v >> 24);
  }
}

void SnapshotWriter::PutU8Array(const std::vector<uint8_t>& values) {
  PutU64(values.size());
  DYNMIS_CHECK(in_section_);
  sections_.back().payload.append(
      reinterpret_cast<const char*>(values.data()), values.size());
}

SnapshotStatus SnapshotWriter::WriteTo(std::ostream& out) const {
  DYNMIS_CHECK(!in_section_);
  std::string header;
  header.append(kMagic, sizeof(kMagic));
  AppendLe(&header, kSnapshotVersion, 4);
  AppendLe(&header, sections_.size(), 4);
  for (const Section& section : sections_) {
    AppendLe(&header, section.name.size(), 2);
    header.append(section.name);
    AppendLe(&header, section.payload.size(), 8);
    AppendLe(&header, Crc32(section.payload.data(), section.payload.size()),
             4);
  }
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  for (const Section& section : sections_) {
    out.write(section.payload.data(),
              static_cast<std::streamsize>(section.payload.size()));
  }
  out.flush();
  if (!out.good()) return SnapshotStatus::Error("snapshot: write failed");
  return SnapshotStatus::Ok();
}

// --- SnapshotReader ----------------------------------------------------------

SnapshotStatus SnapshotReader::ReadFrom(std::istream& in) {
  auto fail = [&](const std::string& message) {
    Fail(message);
    return SnapshotStatus::Error(error_);
  };

  char magic[sizeof(kMagic)];
  if (!ReadExact(in, magic, sizeof(magic))) {
    return fail("snapshot: truncated header (magic)");
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return fail("snapshot: bad magic (not a dynmis snapshot)");
  }
  char scalar[8];
  if (!ReadExact(in, scalar, 4)) {
    return fail("snapshot: truncated header (version)");
  }
  version_ = static_cast<uint32_t>(DecodeLe(scalar, 4));
  if (version_ != kSnapshotVersion) {
    return fail("snapshot: unsupported version " + std::to_string(version_) +
                " (this build reads version " +
                std::to_string(kSnapshotVersion) + ")");
  }
  if (!ReadExact(in, scalar, 4)) {
    return fail("snapshot: truncated header (section count)");
  }
  const uint32_t count = static_cast<uint32_t>(DecodeLe(scalar, 4));
  if (count > kMaxSections) {
    return fail("snapshot: implausible section count " +
                std::to_string(count));
  }

  struct TableEntry {
    std::string name;
    uint64_t size = 0;
    uint32_t crc = 0;
  };
  std::vector<TableEntry> table(count);
  for (TableEntry& entry : table) {
    if (!ReadExact(in, scalar, 2)) {
      return fail("snapshot: truncated section table");
    }
    const size_t name_len = static_cast<size_t>(DecodeLe(scalar, 2));
    if (name_len == 0 || name_len > kMaxSectionNameLen) {
      return fail("snapshot: implausible section name length");
    }
    entry.name.resize(name_len);
    if (!ReadExact(in, entry.name.data(), name_len)) {
      return fail("snapshot: truncated section table");
    }
    if (!ReadExact(in, scalar, 8)) {
      return fail("snapshot: truncated section table");
    }
    entry.size = DecodeLe(scalar, 8);
    if (!ReadExact(in, scalar, 4)) {
      return fail("snapshot: truncated section table");
    }
    entry.crc = static_cast<uint32_t>(DecodeLe(scalar, 4));
  }

  for (const TableEntry& entry : table) {
    std::string payload;
    uint64_t remaining = entry.size;
    while (remaining > 0) {
      const size_t chunk =
          remaining > kReadChunk ? kReadChunk : static_cast<size_t>(remaining);
      const size_t offset = payload.size();
      payload.resize(offset + chunk);
      if (!ReadExact(in, payload.data() + offset, chunk)) {
        return fail("snapshot: truncated payload of section '" + entry.name +
                    "'");
      }
      remaining -= chunk;
    }
    if (Crc32(payload.data(), payload.size()) != entry.crc) {
      return fail("snapshot: CRC mismatch in section '" + entry.name +
                  "' (corrupted data)");
    }
    if (!sections_.emplace(entry.name, std::move(payload)).second) {
      return fail("snapshot: duplicate section '" + entry.name + "'");
    }
    order_.push_back(entry.name);
  }
  return SnapshotStatus::Ok();
}

bool SnapshotReader::HasSection(const std::string& name) const {
  return sections_.count(prefix_ + name) != 0;
}

std::vector<std::string> SnapshotReader::SectionNames() const {
  return order_;
}

size_t SnapshotReader::SectionSize(const std::string& name) const {
  auto it = sections_.find(prefix_ + name);
  return it == sections_.end() ? 0 : it->second.size();
}

bool SnapshotReader::OpenSection(const std::string& name) {
  if (!ok_) return false;
  std::string full = prefix_ + name;
  auto it = sections_.find(full);
  if (it == sections_.end()) {
    Fail("snapshot: missing section '" + full + "'");
    return false;
  }
  current_ = &it->second;
  current_name_ = std::move(full);
  cursor_ = 0;
  return true;
}

void SnapshotReader::Fail(const std::string& message) {
  if (!ok_) return;  // Keep the first (root-cause) error.
  ok_ = false;
  error_ = message;
}

const char* SnapshotReader::Take(size_t size) {
  if (!ok_) return nullptr;
  if (current_ == nullptr) {
    Fail("snapshot: read before OpenSection");
    return nullptr;
  }
  if (size > current_->size() - cursor_) {
    Fail("snapshot: section '" + current_name_ +
         "' is shorter than its declared contents");
    return nullptr;
  }
  const char* data = current_->data() + cursor_;
  cursor_ += size;
  return data;
}

uint8_t SnapshotReader::GetU8() {
  const char* data = Take(1);
  return data ? static_cast<uint8_t>(DecodeLe(data, 1)) : 0;
}

uint32_t SnapshotReader::GetU32() {
  const char* data = Take(4);
  return data ? static_cast<uint32_t>(DecodeLe(data, 4)) : 0;
}

uint64_t SnapshotReader::GetU64() {
  const char* data = Take(8);
  return data ? DecodeLe(data, 8) : 0;
}

double SnapshotReader::GetDouble() {
  const uint64_t bits = GetU64();
  double value;
  std::memcpy(&value, &bits, sizeof(value));
  return value;
}

std::string SnapshotReader::GetString() {
  const uint64_t size = GetU64();
  if (!ok_) return {};
  if (current_ == nullptr || size > current_->size() - cursor_) {
    Fail("snapshot: malformed string length in section '" + current_name_ +
         "'");
    return {};
  }
  const char* data = Take(static_cast<size_t>(size));
  return data ? std::string(data, static_cast<size_t>(size)) : std::string();
}

bool SnapshotReader::GetI32Array(std::vector<int32_t>* out) {
  const uint64_t count = GetU64();
  if (!ok_) return false;
  if (current_ == nullptr || count > (current_->size() - cursor_) / 4) {
    Fail("snapshot: malformed array length in section '" + current_name_ +
         "'");
    return false;
  }
  const char* data = Take(4 * static_cast<size_t>(count));
  if (data == nullptr) return false;
  out->resize(static_cast<size_t>(count));
  for (size_t i = 0; i < count; ++i) {
    (*out)[i] = static_cast<int32_t>(
        static_cast<uint32_t>(DecodeLe(data + 4 * i, 4)));
  }
  return true;
}

bool SnapshotReader::GetU8Array(std::vector<uint8_t>* out) {
  const uint64_t count = GetU64();
  if (!ok_) return false;
  if (current_ == nullptr || count > current_->size() - cursor_) {
    Fail("snapshot: malformed array length in section '" + current_name_ +
         "'");
    return false;
  }
  const char* data = Take(static_cast<size_t>(count));
  if (data == nullptr) return false;
  out->assign(reinterpret_cast<const unsigned char*>(data),
              reinterpret_cast<const unsigned char*>(data) +
                  static_cast<size_t>(count));
  return true;
}

bool SnapshotReader::AtSectionEnd() const {
  return ok_ && current_ != nullptr && cursor_ == current_->size();
}

}  // namespace dynmis
