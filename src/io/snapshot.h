// Versioned binary snapshot container: the durable on-disk format for engine
// state (dynamic graph + maintainer swap structures). Restarting a maintainer
// on a massive graph by replaying its update history is O(history); restoring
// a snapshot is O(state) — the difference between minutes of replay and a
// sub-second load on the paper's workloads.
//
// Layout (all integers little-endian, fixed width):
//
//   magic      8 bytes  "DYNMISSN"
//   version    u32      kSnapshotVersion (readers reject other versions)
//   count      u32      number of sections
//   table      count x { name_len u16, name bytes, payload_len u64, crc u32 }
//   payloads   count payloads, in table order
//
// Each section's CRC32 (IEEE 802.3 polynomial) covers its payload, so a
// flipped bit anywhere in the data is detected before any of it is
// interpreted. Sections are named ("engine", "graph", "mis", ...); producers
// append sections through SnapshotWriter, consumers locate them by name
// through SnapshotReader. Within a payload, values are a flat sequence of
// fixed-width scalars, length-prefixed strings and length-prefixed arrays.
//
// The library does not use exceptions: failures surface as SnapshotStatus
// (writer) or a sticky error on SnapshotReader whose typed getters return
// zero values once the reader has failed — malformed input can produce an
// error, never undefined behaviour.
//
// Both directions buffer the whole container in memory (the header's CRC
// table must precede the payloads, and every payload is CRC-verified before
// any of it is interpreted), so save/load transiently hold roughly the
// serialized engine state on top of the live one. If that tax ever bites at
// larger scale, the follow-up is a streaming layout with per-section
// trailer CRCs (see ROADMAP).

#ifndef DYNMIS_SRC_IO_SNAPSHOT_H_
#define DYNMIS_SRC_IO_SNAPSHOT_H_

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace dynmis {

// Bumped when the section payload encodings change incompatibly. Readers
// reject files written by a different version (see README "Snapshots" for
// the compatibility policy).
inline constexpr uint32_t kSnapshotVersion = 1;

// Outcome of a snapshot save/load. `ok` with an empty message on success;
// on failure `message` names the section and the structural check that
// failed.
struct SnapshotStatus {
  bool ok = true;
  std::string message;

  static SnapshotStatus Ok() { return {}; }
  static SnapshotStatus Error(std::string msg) {
    return {false, std::move(msg)};
  }
  explicit operator bool() const { return ok; }
};

// CRC32 (IEEE 802.3, reflected, polynomial 0xEDB88320) of `size` bytes.
// `seed` chains incremental computation; pass the previous return value.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

// Accumulates named sections in memory, then serializes the container to a
// stream. Values are appended little-endian through the typed Put* methods
// between BeginSection/EndSection.
class SnapshotWriter {
 public:
  void BeginSection(const std::string& name);
  void EndSection();

  // Prefix prepended to every section name passed to BeginSection until the
  // next SetSectionPrefix (empty clears it). Lets a composite producer (the
  // sharded engine) nest a component's fixed section names — "graph",
  // "mis" — uniquely per component: "shard3/graph", "shard3/mis".
  void SetSectionPrefix(std::string prefix) { prefix_ = std::move(prefix); }

  void PutU8(uint8_t value);
  void PutU32(uint32_t value);
  void PutI32(int32_t value) { PutU32(static_cast<uint32_t>(value)); }
  void PutU64(uint64_t value);
  void PutI64(int64_t value) { PutU64(static_cast<uint64_t>(value)); }
  // IEEE-754 bit pattern, little-endian.
  void PutDouble(double value);
  // u64 length + raw bytes.
  void PutString(const std::string& value);
  // u64 count + count little-endian elements.
  void PutI32Array(const std::vector<int32_t>& values);
  void PutU8Array(const std::vector<uint8_t>& values);

  // Serializes header + table + payloads. The writer stays intact (a caller
  // may write the same snapshot to several sinks).
  SnapshotStatus WriteTo(std::ostream& out) const;

 private:
  struct Section {
    std::string name;
    std::string payload;
  };

  std::vector<Section> sections_;
  std::string prefix_;
  bool in_section_ = false;
};

// Parses a snapshot container and hands out typed cursors over its sections.
// All structural problems (bad magic, version mismatch, truncation, CRC
// failure, over-read of a section) are reported through the sticky error
// state: once failed, every getter returns a zero value and ok() is false.
class SnapshotReader {
 public:
  // Reads and verifies the whole container (header, table, payload CRCs).
  // On failure the reader is unusable and the status carries the reason.
  SnapshotStatus ReadFrom(std::istream& in);

  uint32_t version() const { return version_; }
  bool HasSection(const std::string& name) const;
  // Section names in file order (the `snapshot info` listing).
  std::vector<std::string> SectionNames() const;
  // Payload size of `name`, or 0 when absent.
  size_t SectionSize(const std::string& name) const;

  // Prefix prepended to the name arguments of OpenSection / HasSection /
  // SectionSize until the next SetSectionPrefix (empty clears it); the
  // mirror of SnapshotWriter::SetSectionPrefix for composite consumers.
  void SetSectionPrefix(std::string prefix) { prefix_ = std::move(prefix); }

  // Positions the value cursor at the start of `name`. Returns false and
  // fails the reader when the section is missing.
  bool OpenSection(const std::string& name);

  uint8_t GetU8();
  uint32_t GetU32();
  int32_t GetI32() { return static_cast<int32_t>(GetU32()); }
  uint64_t GetU64();
  int64_t GetI64() { return static_cast<int64_t>(GetU64()); }
  double GetDouble();
  std::string GetString();
  // Replaces `*out` with the stored array. Returns false on a malformed
  // length (the declared element count must fit in the section's remaining
  // bytes, so a corrupt length can never trigger a huge allocation).
  bool GetI32Array(std::vector<int32_t>* out);
  bool GetU8Array(std::vector<uint8_t>* out);

  // True when the cursor consumed the open section exactly. Loaders call
  // this after their last field: trailing bytes mean the payload was not
  // written by this revision's encoder and must be rejected, not ignored.
  bool AtSectionEnd() const;

  bool ok() const { return ok_; }
  const std::string& error() const { return error_; }
  SnapshotStatus status() const {
    return ok_ ? SnapshotStatus::Ok() : SnapshotStatus::Error(error_);
  }

  // Marks the reader failed with a structural error message (used by the
  // graph / maintainer loaders when decoded values fail validation).
  void Fail(const std::string& message);

 private:
  // Returns a pointer to `size` readable bytes at the cursor, advancing it;
  // nullptr (and a sticky error) on section over-read.
  const char* Take(size_t size);

  std::map<std::string, std::string> sections_;
  std::vector<std::string> order_;
  std::string prefix_;
  uint32_t version_ = 0;
  const std::string* current_ = nullptr;
  std::string current_name_;
  size_t cursor_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_IO_SNAPSHOT_H_
