#include "src/baselines/dgdis.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/memory.h"

namespace dynmis {

DgDis::DgDis(DynamicGraph* g, int level) : g_(g), level_(level) {
  DYNMIS_CHECK(level == 1 || level == 2);
  EnsureCapacity();
}

void DgDis::EnsureCapacity() {
  const size_t vcap = g_->VertexCapacity();
  if (status_.size() < vcap) {
    status_.resize(vcap, 0);
    count_.resize(vcap, 0);
    alternatives_.resize(vcap);
    visit_mark_.resize(vcap, 0);
  }
}

void DgDis::ResetVertexSlots(VertexId v) {
  EnsureCapacity();
  status_[v] = 0;
  count_[v] = 0;
  alternatives_[v].clear();
  visit_mark_[v] = 0;
}

VertexId DgDis::OwnerOf(VertexId u) const {
  VertexId owner = kInvalidVertex;
  g_->ForEachIncident(u, [&](VertexId w, EdgeId) {
    if (owner == kInvalidVertex && status_[w]) owner = w;
  });
  return owner;
}

void DgDis::MoveIn(VertexId v) {
  DYNMIS_DCHECK(!status_[v] && count_[v] == 0);
  status_[v] = 1;
  ++size_;
  g_->ForEachIncident(v, [&](VertexId u, EdgeId) { ++count_[u]; });
}

void DgDis::MoveOut(VertexId v) {
  DYNMIS_DCHECK(status_[v] != 0);
  status_[v] = 0;
  --size_;
  int own = 0;
  g_->ForEachIncident(v, [&](VertexId u, EdgeId) {
    if (status_[u]) {
      ++own;
    } else {
      --count_[u];
    }
  });
  count_[v] = own;
}

void DgDis::MakeMaximalAround(const std::vector<VertexId>& candidates) {
  for (VertexId w : candidates) {
    if (g_->IsVertexAlive(w) && !status_[w] && count_[w] == 0) MoveIn(w);
  }
}

void DgDis::BuildIndex() {
  // Snapshot the degree-one / degree-two dependency structure around the
  // initial solution: for each solution vertex s its 1-tight (and, for
  // TwoDIS, 2-tight) neighbours are the recorded alternatives; for each
  // covered vertex its solution neighbours are its dependency targets.
  for (VertexId v = 0; v < g_->VertexCapacity(); ++v) {
    if (!g_->IsVertexAlive(v)) continue;
    alternatives_[v].clear();
    if (status_[v]) {
      g_->ForEachIncident(v, [&](VertexId u, EdgeId) {
        if (count_[u] == 1 || (level_ == 2 && count_[u] == 2)) {
          alternatives_[v].push_back(u);
        }
      });
    } else {
      g_->ForEachIncident(v, [&](VertexId u, EdgeId) {
        if (status_[u]) alternatives_[v].push_back(u);
      });
    }
  }
}

bool DgDis::SearchComplementary(VertexId w, int depth) {
  ++stats_.searches;
  ++visit_epoch_;
  int64_t steps = 0;

  // Depth-limited alternating walk: try the snapshot alternatives of `w`;
  // a free alternative restores the size directly, a 1-tight alternative
  // can be freed by moving its (current) owner out, provided the owner can
  // in turn be replaced at smaller depth.
  auto walk = [&](auto&& self, VertexId lost, int d) -> bool {
    if (steps > kSearchCap) return false;
    if (lost >= static_cast<VertexId>(alternatives_.size())) return false;
    for (VertexId r : alternatives_[lost]) {
      ++steps;
      if (steps > kSearchCap) break;
      if (!g_->IsVertexAlive(r) || status_[r]) continue;
      if (visit_mark_[r] == visit_epoch_) continue;
      visit_mark_[r] = visit_epoch_;
      if (count_[r] == 0) {
        MoveIn(r);
        ++stats_.replacements;
        return true;
      }
      if (d > 0 && count_[r] == 1) {
        const VertexId s = OwnerOf(r);
        if (s == kInvalidVertex || visit_mark_[s] == visit_epoch_) continue;
        visit_mark_[s] = visit_epoch_;
        // Speculatively rotate: s out, r in, then try to re-place s.
        MoveOut(s);
        DYNMIS_DCHECK(count_[r] == 0);
        MoveIn(r);
        // Freed leftovers around s keep the solution maximal.
        std::vector<VertexId> freed;
        g_->ForEachIncident(s, [&](VertexId z, EdgeId) {
          if (!status_[z] && count_[z] == 0) freed.push_back(z);
        });
        MakeMaximalAround(freed);
        if (count_[s] == 0) {
          MoveIn(s);
          ++stats_.replacements;
          return true;
        }
        if (self(self, s, d - 1)) {
          ++stats_.replacements;
          return true;
        }
        // The rotation kept the size balanced (s out, r in); accept it and
        // report failure to recover the extra slot.
        return false;
      }
    }
    return false;
  };
  const bool ok = walk(walk, w, depth);
  stats_.search_steps += steps;
  return ok;
}

void DgDis::Initialize(const std::vector<VertexId>& initial) {
  for (VertexId v : initial) {
    DYNMIS_CHECK(g_->IsVertexAlive(v) && !status_[v]);
    DYNMIS_CHECK_EQ(count_[v], 0);
    MoveIn(v);
  }
  for (VertexId v = 0; v < g_->VertexCapacity(); ++v) {
    if (g_->IsVertexAlive(v) && !status_[v] && count_[v] == 0) MoveIn(v);
  }
  BuildIndex();
}

void DgDis::InsertEdge(VertexId u, VertexId v) {
  const bool u_in = status_[u];
  const bool v_in = status_[v];
  g_->AddEdge(u, v);
  EnsureCapacity();
  if (u_in && v_in) {
    const VertexId loser = g_->Degree(u) >= g_->Degree(v) ? u : v;
    MoveOut(loser);
    std::vector<VertexId> freed;
    g_->ForEachIncident(loser, [&](VertexId w, EdgeId) {
      if (!status_[w] && count_[w] == 0) freed.push_back(w);
    });
    MakeMaximalAround(freed);
    if (count_[loser] == 0) {
      MoveIn(loser);
    } else {
      SearchComplementary(loser, level_ == 1 ? 2 : 3);
    }
    RecordDependenciesAround(loser);
  } else if (u_in || v_in) {
    const VertexId covered = u_in ? v : u;
    ++count_[covered];
    // Index upkeep: the new covering relation becomes part of the
    // dependency graph (and is never garbage-collected, so the index grows
    // as updates accumulate - the behaviour the paper reports).
    alternatives_[u_in ? u : v].push_back(covered);
    alternatives_[covered].push_back(u_in ? u : v);
  }
}

void DgDis::RecordDependenciesAround(VertexId w) {
  // Dependency-graph upkeep after a structural change around `w`: record
  // the current degree-one (and, for TwoDIS, degree-two) relations in the
  // index. Entries accumulate; stale ones are filtered at search time.
  if (!g_->IsVertexAlive(w)) return;
  g_->ForEachIncident(w, [&](VertexId x, EdgeId) {
    if (status_[x] || count_[x] > level_) return;
    const VertexId owner = OwnerOf(x);
    if (owner == kInvalidVertex) return;
    alternatives_[owner].push_back(x);
    alternatives_[x].push_back(owner);
  });
}

void DgDis::DeleteEdge(VertexId u, VertexId v) {
  const bool removed = g_->RemoveEdgeBetween(u, v);
  DYNMIS_CHECK(removed);
  const bool u_in = status_[u];
  const bool v_in = status_[v];
  if (u_in || v_in) {
    const VertexId other = u_in ? v : u;
    --count_[other];
    if (count_[other] == 0) {
      MoveIn(other);
      RecordDependenciesAround(other);
    } else if (count_[other] <= level_) {
      RecordDependenciesAround(other);
    }
  }
}

VertexId DgDis::InsertVertex(const std::vector<VertexId>& neighbors) {
  const VertexId v = g_->AddVertex();
  EnsureCapacity();
  ResetVertexSlots(v);
  for (VertexId u : neighbors) {
    g_->AddEdge(u, v);
    EnsureCapacity();
    if (status_[u]) ++count_[v];
    // Record the dependency for future searches.
    if (status_[u]) alternatives_[v].push_back(u);
  }
  if (count_[v] == 0) MoveIn(v);
  return v;
}

void DgDis::DeleteVertex(VertexId v) {
  DYNMIS_CHECK(g_->IsVertexAlive(v));
  std::vector<VertexId> neighbors = g_->Neighbors(v);
  const bool was_in = status_[v];
  if (was_in) MoveOut(v);
  // Detach: counts of covered neighbours drop when a solution vertex left;
  // for a covered v nothing changes for the neighbours.
  g_->RemoveVertex(v);
  ResetVertexSlots(v);
  if (was_in) {
    MakeMaximalAround(neighbors);
    SearchComplementary(v, level_ == 1 ? 2 : 3);
    for (VertexId w : neighbors) {
      if (g_->IsVertexAlive(w) && status_[w]) RecordDependenciesAround(w);
    }
  }
}

std::vector<VertexId> DgDis::Solution() const {
  std::vector<VertexId> out;
  CollectSolution(&out);
  return out;
}

void DgDis::CollectSolution(std::vector<VertexId>* out) const {
  out->reserve(out->size() + static_cast<size_t>(size_));
  for (VertexId v = 0; v < g_->VertexCapacity(); ++v) {
    if (g_->IsVertexAlive(v) && status_[v]) out->push_back(v);
  }
}

size_t DgDis::MemoryUsageBytes() const {
  return VectorBytes(status_) + VectorBytes(count_) +
         NestedVectorBytes(alternatives_) + VectorBytes(visit_mark_);
}

void DgDis::CheckConsistency() const {
  for (VertexId v = 0; v < g_->VertexCapacity(); ++v) {
    if (!g_->IsVertexAlive(v)) continue;
    int solution_neighbors = 0;
    g_->ForEachIncident(v, [&](VertexId u, EdgeId) {
      if (status_[u]) ++solution_neighbors;
    });
    if (status_[v]) {
      DYNMIS_CHECK_EQ(solution_neighbors, 0);
    } else {
      DYNMIS_CHECK_EQ(count_[v], solution_neighbors);
      DYNMIS_CHECK_GE(count_[v], 1);
    }
  }
}

}  // namespace dynmis
