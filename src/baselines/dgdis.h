// DGOneDIS / DGTwoDIS: reimplementation of the index-based dynamic
// near-maximum independent set maintenance of Zheng, Piao, Cheng & Yu
// (ICDE 2019), the paper's main competitor. The authors' code is not
// public; this follows the published design and reproduces the observable
// behaviours the comparison in our paper relies on:
//
//  * An index ("dependency graph") is built ONCE from the initial solution
//    using degree-one (OneDIS) and additionally degree-two (TwoDIS)
//    reduction structure: for every vertex it records the snapshot
//    alternatives through which a lost solution vertex can be replaced by a
//    complementary set of at least the same size.
//  * Updates maintain independence and maximality; when a solution vertex
//    is lost, an alternating depth-limited search walks the index looking
//    for complementary vertices (depth 2 for OneDIS, 3 for TwoDIS).
//  * There is NO swap-based improvement on unrelated deletions and no
//    quality guarantee, so the gap grows with the number of updates; and
//    because index entries go stale as the graph drifts, the searches
//    explore progressively more nodes, so response time grows with update
//    count - both effects reported in the paper's experiments.

#ifndef DYNMIS_SRC_BASELINES_DGDIS_H_
#define DYNMIS_SRC_BASELINES_DGDIS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dynmis/maintainer.h"

namespace dynmis {

class DgDis : public DynamicMisMaintainer {
 public:
  // level 1 = DGOneDIS (degree-one index), 2 = DGTwoDIS (degree-two too).
  DgDis(DynamicGraph* g, int level);

  void Initialize(const std::vector<VertexId>& initial) override;

  void InsertEdge(VertexId u, VertexId v) override;
  void DeleteEdge(VertexId u, VertexId v) override;
  VertexId InsertVertex(const std::vector<VertexId>& neighbors) override;
  void DeleteVertex(VertexId v) override;

  bool InSolution(VertexId v) const override { return status_[v] != 0; }
  int64_t SolutionSize() const override { return size_; }
  std::vector<VertexId> Solution() const override;
  void CollectSolution(std::vector<VertexId>* out) const override;
  size_t MemoryUsageBytes() const override;
  std::string Name() const override {
    return level_ == 1 ? "DGOneDIS" : "DGTwoDIS";
  }

  void CheckConsistency() const;

  struct Stats {
    int64_t searches = 0;
    int64_t search_steps = 0;  // Index nodes visited across all searches.
    int64_t replacements = 0;  // Successful complementary substitutions.
  };
  const Stats& stats() const { return stats_; }

 private:
  void EnsureCapacity();
  void ResetVertexSlots(VertexId v);
  VertexId OwnerOf(VertexId u) const;
  void MoveIn(VertexId v);
  void MoveOut(VertexId v);
  void MakeMaximalAround(const std::vector<VertexId>& candidates);
  void BuildIndex();
  // Appends the current covering relations around `w` to the index (never
  // garbage-collected; see the class comment's staleness discussion).
  void RecordDependenciesAround(VertexId w);
  // Alternating search through the index for a complementary set after `w`
  // left the solution. Returns true if the solution size was restored.
  bool SearchComplementary(VertexId w, int depth);

  DynamicGraph* g_;
  int level_;
  std::vector<uint8_t> status_;
  std::vector<int32_t> count_;
  int64_t size_ = 0;

  // Index: snapshot alternatives per vertex (candidate replacements for
  // solution vertices; dependency targets for covered vertices).
  std::vector<std::vector<VertexId>> alternatives_;
  std::vector<uint32_t> visit_mark_;
  uint32_t visit_epoch_ = 0;

  Stats stats_;

  // Visited-node cap per complementary search. High enough that the
  // search-space growth the paper reports (the index "becomes more and
  // more complex" as updates accumulate) dominates response time on dense
  // graphs; it exists only to bound a single pathological search.
  static constexpr int64_t kSearchCap = 65536;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_BASELINES_DGDIS_H_
