#include "src/baselines/recompute.h"

#include "src/graph/static_graph.h"
#include "src/static_mis/greedy.h"
#include "src/util/memory.h"

namespace dynmis {

RecomputeGreedy::RecomputeGreedy(DynamicGraph* g, int every)
    : g_(g), every_(every) {
  DYNMIS_CHECK_GE(every, 1);
}

void RecomputeGreedy::Recompute() {
  const StaticGraph snapshot = StaticGraph::FromDynamic(*g_);
  solution_ = snapshot.ToOriginalIds(GreedyMis(snapshot));
  in_solution_.assign(g_->VertexCapacity(), 0);
  for (VertexId v : solution_) in_solution_[v] = 1;
}

void RecomputeGreedy::OnUpdate() {
  if (++pending_ >= every_) {
    pending_ = 0;
    Recompute();
  }
}

void RecomputeGreedy::Initialize(const std::vector<VertexId>&) { Recompute(); }

void RecomputeGreedy::InsertEdge(VertexId u, VertexId v) {
  g_->AddEdge(u, v);
  OnUpdate();
}

void RecomputeGreedy::DeleteEdge(VertexId u, VertexId v) {
  const bool removed = g_->RemoveEdgeBetween(u, v);
  DYNMIS_CHECK(removed);
  OnUpdate();
}

VertexId RecomputeGreedy::InsertVertex(const std::vector<VertexId>& neighbors) {
  const VertexId v = g_->AddVertex();
  for (VertexId u : neighbors) g_->AddEdge(u, v);
  OnUpdate();
  return v;
}

void RecomputeGreedy::DeleteVertex(VertexId v) {
  g_->RemoveVertex(v);
  OnUpdate();
}

bool RecomputeGreedy::InSolution(VertexId v) const {
  return v < static_cast<VertexId>(in_solution_.size()) && in_solution_[v];
}

size_t RecomputeGreedy::MemoryUsageBytes() const {
  return VectorBytes(solution_) + VectorBytes(in_solution_);
}

}  // namespace dynmis
