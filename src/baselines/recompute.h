// Recompute-from-scratch baseline: the strawman the paper's introduction
// argues against ("the existing approaches need to recompute the solution
// from scratch after each update"). After every update it rebuilds a
// maximal independent set with the min-degree greedy heuristic on a fresh
// snapshot. Used by the examples and ablation benches to quantify the
// benefit of true dynamic maintenance.

#ifndef DYNMIS_SRC_BASELINES_RECOMPUTE_H_
#define DYNMIS_SRC_BASELINES_RECOMPUTE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dynmis/maintainer.h"

namespace dynmis {

class RecomputeGreedy : public DynamicMisMaintainer {
 public:
  // `every` lets callers amortize: recompute after every `every`-th update.
  explicit RecomputeGreedy(DynamicGraph* g, int every = 1);

  void Initialize(const std::vector<VertexId>& initial) override;

  void InsertEdge(VertexId u, VertexId v) override;
  void DeleteEdge(VertexId u, VertexId v) override;
  VertexId InsertVertex(const std::vector<VertexId>& neighbors) override;
  void DeleteVertex(VertexId v) override;

  bool InSolution(VertexId v) const override;
  int64_t SolutionSize() const override {
    return static_cast<int64_t>(solution_.size());
  }
  std::vector<VertexId> Solution() const override { return solution_; }
  void CollectSolution(std::vector<VertexId>* out) const override {
    out->insert(out->end(), solution_.begin(), solution_.end());
  }
  size_t MemoryUsageBytes() const override;
  std::string Name() const override { return "Recompute"; }

 private:
  void Recompute();
  void OnUpdate();

  DynamicGraph* g_;
  int every_;
  int pending_ = 0;
  std::vector<VertexId> solution_;
  std::vector<uint8_t> in_solution_;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_BASELINES_RECOMPUTE_H_
