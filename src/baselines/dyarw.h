// DyARW: the dynamic adaptation of the ARW local search used as a baseline
// in the paper's evaluation. Like DyOneSwap it maintains a 1-maximal
// independent set (so solution quality tracks DyOneSwap almost exactly),
// but it follows the original ARW implementation style: each vertex keeps a
// *sorted* adjacency array and the clique tests are double-pointer scans
// over sorted lists. Maintaining the ordered structure under updates
// (binary-search insert/erase) is what makes DyARW measurably slower than
// DyOneSwap's intrusive-list design - the effect the paper reports.

#ifndef DYNMIS_SRC_BASELINES_DYARW_H_
#define DYNMIS_SRC_BASELINES_DYARW_H_

#include <cstdint>
#include <string>
#include <vector>

#include "dynmis/maintainer.h"

namespace dynmis {

class DyArw : public DynamicMisMaintainer {
 public:
  explicit DyArw(DynamicGraph* g);

  void Initialize(const std::vector<VertexId>& initial) override;

  void InsertEdge(VertexId u, VertexId v) override;
  void DeleteEdge(VertexId u, VertexId v) override;
  VertexId InsertVertex(const std::vector<VertexId>& neighbors) override;
  void DeleteVertex(VertexId v) override;

  bool InSolution(VertexId v) const override { return status_[v] != 0; }
  int64_t SolutionSize() const override { return size_; }
  std::vector<VertexId> Solution() const override;
  void CollectSolution(std::vector<VertexId>* out) const override;
  size_t MemoryUsageBytes() const override;
  std::string Name() const override { return "DyARW"; }

  // Test hook: asserts independence, maximality and count correctness.
  void CheckConsistency() const;

 private:
  void EnsureCapacity();
  void ResetVertexSlots(VertexId v);
  void SortedInsert(VertexId v, VertexId u);
  void SortedErase(VertexId v, VertexId u);
  VertexId OwnerOf(VertexId u) const;
  void MoveIn(VertexId v);
  void MoveOut(VertexId v);
  void ExtendAround(const std::vector<VertexId>& candidates);
  void EnqueueCandidate(VertexId owner, VertexId u);
  void CollectTightAround(VertexId v);
  void ProcessQueue();

  DynamicGraph* g_;
  // Sorted adjacency mirror (the "ordered structure").
  std::vector<std::vector<VertexId>> sorted_adj_;
  std::vector<uint8_t> status_;
  std::vector<int32_t> count_;
  int64_t size_ = 0;

  std::vector<VertexId> queue_;
  std::vector<uint8_t> in_queue_;
  std::vector<std::vector<VertexId>> cand_of_;
  std::vector<VertexId> cand_owner_;
};

}  // namespace dynmis

#endif  // DYNMIS_SRC_BASELINES_DYARW_H_
