#include "src/baselines/dyarw.h"

#include <algorithm>

#include "src/util/check.h"
#include "src/util/memory.h"

namespace dynmis {

DyArw::DyArw(DynamicGraph* g) : g_(g) {
  EnsureCapacity();
  // Mirror the existing adjacency in sorted form.
  for (VertexId v = 0; v < g_->VertexCapacity(); ++v) {
    if (!g_->IsVertexAlive(v)) continue;
    sorted_adj_[v] = g_->Neighbors(v);
    std::sort(sorted_adj_[v].begin(), sorted_adj_[v].end());
  }
}

void DyArw::EnsureCapacity() {
  const size_t vcap = g_->VertexCapacity();
  if (status_.size() < vcap) {
    sorted_adj_.resize(vcap);
    status_.resize(vcap, 0);
    count_.resize(vcap, 0);
    in_queue_.resize(vcap, 0);
    cand_of_.resize(vcap);
    cand_owner_.resize(vcap, kInvalidVertex);
  }
}

void DyArw::ResetVertexSlots(VertexId v) {
  EnsureCapacity();
  sorted_adj_[v].clear();
  status_[v] = 0;
  count_[v] = 0;
  in_queue_[v] = 0;
  for (VertexId u : cand_of_[v]) {
    if (cand_owner_[u] == v) cand_owner_[u] = kInvalidVertex;
  }
  cand_of_[v].clear();
  cand_owner_[v] = kInvalidVertex;
}

void DyArw::SortedInsert(VertexId v, VertexId u) {
  auto& list = sorted_adj_[v];
  list.insert(std::lower_bound(list.begin(), list.end(), u), u);
}

void DyArw::SortedErase(VertexId v, VertexId u) {
  auto& list = sorted_adj_[v];
  auto it = std::lower_bound(list.begin(), list.end(), u);
  DYNMIS_DCHECK(it != list.end() && *it == u);
  list.erase(it);
}

VertexId DyArw::OwnerOf(VertexId u) const {
  for (VertexId w : sorted_adj_[u]) {
    if (status_[w]) return w;
  }
  DYNMIS_CHECK(false);
  return kInvalidVertex;
}

void DyArw::MoveIn(VertexId v) {
  DYNMIS_DCHECK(!status_[v] && count_[v] == 0);
  status_[v] = 1;
  ++size_;
  for (VertexId u : sorted_adj_[v]) ++count_[u];
}

void DyArw::MoveOut(VertexId v) {
  DYNMIS_DCHECK(status_[v] != 0);
  status_[v] = 0;
  --size_;
  int own = 0;
  for (VertexId u : sorted_adj_[v]) {
    if (status_[u]) {
      ++own;
    } else {
      --count_[u];
    }
  }
  count_[v] = own;
}

void DyArw::ExtendAround(const std::vector<VertexId>& candidates) {
  for (VertexId w : candidates) {
    if (g_->IsVertexAlive(w) && !status_[w] && count_[w] == 0) MoveIn(w);
  }
}

void DyArw::EnqueueCandidate(VertexId owner, VertexId u) {
  if (cand_owner_[u] == owner) return;
  cand_owner_[u] = owner;
  cand_of_[owner].push_back(u);
  if (!in_queue_[owner]) {
    in_queue_[owner] = 1;
    queue_.push_back(owner);
  }
}

void DyArw::CollectTightAround(VertexId v) {
  // Enqueue every 1-tight vertex in N[v] under its owner.
  auto consider = [&](VertexId w) {
    if (g_->IsVertexAlive(w) && !status_[w] && count_[w] == 1) {
      EnqueueCandidate(OwnerOf(w), w);
    }
  };
  consider(v);
  for (VertexId w : sorted_adj_[v]) consider(w);
}

void DyArw::Initialize(const std::vector<VertexId>& initial) {
  for (VertexId v : initial) {
    DYNMIS_CHECK(g_->IsVertexAlive(v) && !status_[v]);
    DYNMIS_CHECK_EQ(count_[v], 0);
    MoveIn(v);
  }
  for (VertexId v = 0; v < g_->VertexCapacity(); ++v) {
    if (g_->IsVertexAlive(v) && !status_[v] && count_[v] == 0) MoveIn(v);
  }
  for (VertexId u = 0; u < g_->VertexCapacity(); ++u) {
    if (g_->IsVertexAlive(u) && !status_[u] && count_[u] == 1) {
      EnqueueCandidate(OwnerOf(u), u);
    }
  }
  ProcessQueue();
}

void DyArw::ProcessQueue() {
  std::vector<VertexId> tight;
  std::vector<VertexId> kept;
  while (!queue_.empty()) {
    const VertexId v = queue_.back();
    queue_.pop_back();
    in_queue_[v] = 0;
    std::vector<VertexId> cands = std::move(cand_of_[v]);
    cand_of_[v].clear();
    const bool v_valid = g_->IsVertexAlive(v) && status_[v];
    kept.clear();
    for (VertexId u : cands) {
      if (cand_owner_[u] != v) continue;
      cand_owner_[u] = kInvalidVertex;
      if (!v_valid || !g_->IsVertexAlive(u) || status_[u] || count_[u] != 1) {
        continue;
      }
      kept.push_back(u);
    }
    if (kept.empty()) continue;
    // bar1(v) in sorted order (sorted_adj_[v] is sorted).
    tight.clear();
    for (VertexId w : sorted_adj_[v]) {
      if (!status_[w] && count_[w] == 1) tight.push_back(w);
    }
    const int tight_size = static_cast<int>(tight.size());
    for (VertexId u : kept) {
      // Double-pointer scan: |N(u) cap bar1(v)| over two sorted arrays.
      int inter = 1;  // u itself.
      const auto& nu = sorted_adj_[u];
      size_t i = 0;
      size_t j = 0;
      while (i < nu.size() && j < tight.size()) {
        if (nu[i] < tight[j]) {
          ++i;
        } else if (nu[i] > tight[j]) {
          ++j;
        } else {
          ++inter;
          ++i;
          ++j;
        }
      }
      if (inter >= tight_size) continue;
      // Swap: v out, u in, freed tight vertices in.
      MoveOut(v);
      MoveIn(u);
      ExtendAround(tight);
      CollectTightAround(v);
      break;
    }
  }
}

void DyArw::InsertEdge(VertexId u, VertexId v) {
  const bool u_in = status_[u];
  const bool v_in = status_[v];
  g_->AddEdge(u, v);
  EnsureCapacity();
  SortedInsert(u, v);
  SortedInsert(v, u);
  if (u_in && v_in) {
    VertexId loser = g_->Degree(u) >= g_->Degree(v) ? u : v;
    // Prefer an endpoint with a 1-tight neighbour (replacement guaranteed).
    auto has_tight = [&](VertexId x) {
      for (VertexId w : sorted_adj_[x]) {
        if (!status_[w] && count_[w] == 1) return true;
      }
      return false;
    };
    const bool tu = has_tight(u);
    const bool tv = has_tight(v);
    if (tu != tv) loser = tu ? u : v;
    MoveOut(loser);
    ExtendAround(sorted_adj_[loser]);
    CollectTightAround(loser);
  } else if (u_in || v_in) {
    const VertexId other = u_in ? v : u;
    ++count_[other];
    if (count_[other] == 1) EnqueueCandidate(OwnerOf(other), other);
  }
  ProcessQueue();
}

void DyArw::DeleteEdge(VertexId u, VertexId v) {
  const bool removed = g_->RemoveEdgeBetween(u, v);
  DYNMIS_CHECK(removed);
  SortedErase(u, v);
  SortedErase(v, u);
  const bool u_in = status_[u];
  const bool v_in = status_[v];
  if (u_in || v_in) {
    const VertexId other = u_in ? v : u;
    --count_[other];
    if (count_[other] == 0) {
      MoveIn(other);
    } else if (count_[other] == 1) {
      EnqueueCandidate(OwnerOf(other), other);
    }
  } else if (count_[u] == 1 && count_[v] == 1) {
    const VertexId wu = OwnerOf(u);
    if (wu == OwnerOf(v)) {
      std::vector<VertexId> tight;
      for (VertexId w : sorted_adj_[wu]) {
        if (!status_[w] && count_[w] == 1) tight.push_back(w);
      }
      MoveOut(wu);
      DYNMIS_DCHECK(count_[u] == 0);
      MoveIn(u);
      if (count_[v] == 0) MoveIn(v);
      ExtendAround(tight);
      CollectTightAround(wu);
    }
  }
  ProcessQueue();
}

VertexId DyArw::InsertVertex(const std::vector<VertexId>& neighbors) {
  const VertexId v = g_->AddVertex();
  EnsureCapacity();
  ResetVertexSlots(v);
  for (VertexId u : neighbors) {
    g_->AddEdge(u, v);
    EnsureCapacity();
    SortedInsert(u, v);
    SortedInsert(v, u);
    if (status_[u]) ++count_[v];
  }
  if (count_[v] == 0) {
    MoveIn(v);
  } else if (count_[v] == 1) {
    EnqueueCandidate(OwnerOf(v), v);
  }
  ProcessQueue();
  return v;
}

void DyArw::DeleteVertex(VertexId v) {
  DYNMIS_CHECK(g_->IsVertexAlive(v));
  std::vector<VertexId> neighbors = sorted_adj_[v];
  const bool was_in = status_[v];
  if (was_in) MoveOut(v);
  for (VertexId u : neighbors) SortedErase(u, v);
  g_->RemoveVertex(v);
  ResetVertexSlots(v);
  if (was_in) {
    ExtendAround(neighbors);
    for (VertexId w : neighbors) {
      if (g_->IsVertexAlive(w) && !status_[w] && count_[w] == 1) {
        EnqueueCandidate(OwnerOf(w), w);
      }
    }
  }
  ProcessQueue();
}

std::vector<VertexId> DyArw::Solution() const {
  std::vector<VertexId> out;
  CollectSolution(&out);
  return out;
}

void DyArw::CollectSolution(std::vector<VertexId>* out) const {
  out->reserve(out->size() + static_cast<size_t>(size_));
  for (VertexId v = 0; v < g_->VertexCapacity(); ++v) {
    if (g_->IsVertexAlive(v) && status_[v]) out->push_back(v);
  }
}

size_t DyArw::MemoryUsageBytes() const {
  return NestedVectorBytes(sorted_adj_) + VectorBytes(status_) +
         VectorBytes(count_) + VectorBytes(queue_) + VectorBytes(in_queue_) +
         NestedVectorBytes(cand_of_) + VectorBytes(cand_owner_);
}

void DyArw::CheckConsistency() const {
  for (VertexId v = 0; v < g_->VertexCapacity(); ++v) {
    if (!g_->IsVertexAlive(v)) continue;
    int solution_neighbors = 0;
    for (VertexId u : sorted_adj_[v]) {
      if (status_[u]) ++solution_neighbors;
    }
    if (status_[v]) {
      DYNMIS_CHECK_EQ(solution_neighbors, 0);
    } else {
      DYNMIS_CHECK_EQ(count_[v], solution_neighbors);
      DYNMIS_CHECK_GE(count_[v], 1);
    }
    // The mirror matches the graph.
    std::vector<VertexId> expected = g_->Neighbors(v);
    std::sort(expected.begin(), expected.end());
    DYNMIS_CHECK(expected == sorted_adj_[v]);
  }
}

}  // namespace dynmis
