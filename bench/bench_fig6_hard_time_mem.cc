// Fig 6: (a) response time for the large update batch on the hard graphs
// (with the DG* algorithms running under the same wall-clock budget as in
// Table IV - the paper reports them DNF on the largest five), and (b)
// structure memory usage.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/graph/datasets.h"
#include "src/harness/experiment.h"
#include "src/harness/report.h"
#include "src/util/table.h"

namespace dynmis {
namespace {

const std::vector<MaintainerConfig> kAlgos = {
    "DGOneDIS", "DGTwoDIS", "DyARW", "DyOneSwap", "DyTwoSwap"};

void Run() {
  std::printf(
      "=== Fig 6: response time & memory on hard graphs (heavy batch) ===\n");
  bench::PrintScaleNote();
  std::vector<std::string> headers = {"Graph", "#upd"};
  for (const MaintainerConfig& algo : kAlgos) headers.push_back(algo.algorithm);
  TablePrinter time_table(headers);
  TablePrinter mem_table(headers);
  for (const DatasetSpec& spec : HardDatasets()) {
    const EdgeListGraph base = GenerateDataset(spec);
    ExperimentConfig config;
    config.initial = InitialSolution::kArw;
    config.arw_iterations = 200;
    config.num_updates = bench::LargeBatch(base.NumEdges());
    config.stream.seed = spec.seed * 769 + 5;
    config.stream.bias = EndpointBias::kDegreeProportional;
    config.time_limit_seconds = 10.0;
    const ExperimentResult result = RunExperiment(base, kAlgos, config);
    std::vector<std::string> time_row = {spec.name,
                                         FormatCount(config.num_updates)};
    std::vector<std::string> mem_row = {spec.name,
                                        FormatCount(config.num_updates)};
    for (const MaintainerConfig& algo : kAlgos) {
      const AlgoRunResult& run = FindRun(result, algo.algorithm);
      time_row.push_back(TimeCell(run));
      mem_row.push_back(MemoryCell(run));
    }
    time_table.AddRow(std::move(time_row));
    mem_table.AddRow(std::move(mem_row));
  }
  std::printf("response time (Fig 6(a)):\n");
  time_table.Print(stdout);
  std::printf("\nmemory usage (Fig 6(b)):\n");
  mem_table.Print(stdout);
  std::printf(
      "\nExpected shape (paper): Dy* well under the budget everywhere; DG* "
      "slow or DNF on the\nlargest graphs; memory ordering DyTwoSwap > "
      "DyOneSwap ~ DyARW > DG*.\n");
}

}  // namespace
}  // namespace dynmis

int main() {
  dynmis::Run();
  return 0;
}
