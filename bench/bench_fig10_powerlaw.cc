// Fig 10: power-law random graphs with growth exponent beta swept over
// 1.9 .. 2.7 (configuration model, the NetworkX stand-in): response time
// and gap & accuracy for all five algorithms.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/graph/generators.h"
#include "src/harness/experiment.h"
#include "src/harness/report.h"
#include "src/util/table.h"

namespace dynmis {
namespace {

const std::vector<MaintainerConfig> kAlgos = {
    "DGOneDIS", "DGTwoDIS", "DyARW", "DyOneSwap", "DyTwoSwap"};

void Run() {
  const int n = 20000;
  const int updates = bench::ScaledUpdates(20000);
  std::printf(
      "=== Fig 10: power-law random graphs, n=%d, beta in 1.9..2.7 "
      "(%d updates) ===\n",
      n, updates);
  bench::PrintScaleNote();
  std::vector<std::string> headers = {"beta", "m"};
  for (const MaintainerConfig& algo : kAlgos) headers.push_back(algo.algorithm);
  TablePrinter time_table(headers);
  TablePrinter gap_table(headers);
  TablePrinter acc_table(headers);
  for (const double beta : {1.9, 2.1, 2.3, 2.5, 2.7}) {
    Rng rng(SplitMix64(static_cast<uint64_t>(beta * 1000)));
    const EdgeListGraph base =
        PowerLawRandomGraph(n, beta, 1, n / 50, &rng);
    ExperimentConfig config;
    config.initial = InitialSolution::kExact;  // PLR graphs reduce fully.
    config.num_updates = updates;
    config.stream.seed = static_cast<uint64_t>(beta * 7919);
    config.stream.bias = EndpointBias::kDegreeProportional;
    config.compute_final_alpha = true;
    config.compute_final_best = true;  // Fallback reference (marked "~").
    const ExperimentResult result = RunExperiment(base, kAlgos, config);
    const bool have_alpha = result.final_alpha >= 0;
    const int64_t reference =
        have_alpha ? result.final_alpha : result.final_best;
    std::vector<std::string> time_row = {
        FormatDouble(beta, 1) + (have_alpha ? "" : "~"),
        FormatCount(base.NumEdges())};
    std::vector<std::string> gap_row = time_row;
    std::vector<std::string> acc_row = time_row;
    for (const MaintainerConfig& algo : kAlgos) {
      const AlgoRunResult& run = FindRun(result, algo.algorithm);
      time_row.push_back(TimeCell(run));
      gap_row.push_back(GapCell(run, reference));
      acc_row.push_back(AccuracyCell(run, reference));
    }
    time_table.AddRow(std::move(time_row));
    gap_table.AddRow(std::move(gap_row));
    acc_table.AddRow(std::move(acc_row));
  }
  std::printf("response time (Fig 10(a)):\n");
  time_table.Print(stdout);
  std::printf("\ngap to alpha:\n");
  gap_table.Print(stdout);
  std::printf("\naccuracy (Fig 10(b)):\n");
  acc_table.Print(stdout);
  std::printf(
      "\nExpected shape (paper): Dy* beat DG* on both time and accuracy, by "
      "the widest margin at\nsmall beta (dense graphs); DG* time blows up as "
      "beta shrinks.\n");
}

}  // namespace
}  // namespace dynmis

int main() {
  dynmis::Run();
  return 0;
}
