// Table III: gap to the independence number and accuracy on the last seven
// easy graphs after the *large* update batch (the paper's 1,000,000; 10x
// the Table II stream here). The paper's finding: with many updates the
// DG* index degrades and the Dy* advantage widens (e.g. web-BerkStan +2%,
// hollywood +4%).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/graph/datasets.h"
#include "src/harness/experiment.h"
#include "src/harness/report.h"
#include "src/util/table.h"

namespace dynmis {
namespace {

void Run() {
  std::printf("=== Table III: easy graphs after the heavy update batch "
              "(~50%% of m) ===\n");
  bench::PrintScaleNote();
  TablePrinter table({"Graph", "#upd", "alpha", "DGOneDIS gap", "acc",
                      "DGTwoDIS gap", "acc", "DyARW gap", "acc",
                      "DyOneSwap gap", "acc", "gap*", "DyTwoSwap gap", "acc",
                      "gap*"});
  const auto& easy = EasyDatasets();
  for (size_t i = 6; i < easy.size(); ++i) {  // Last seven, as in the paper.
    const DatasetSpec& spec = easy[i];
    const EdgeListGraph base = GenerateDataset(spec);
    ExperimentConfig config;
    config.initial = InitialSolution::kExact;
    config.num_updates = bench::LargeBatch(base.NumEdges());
    config.stream.seed = spec.seed * 2027 + 3;
    config.stream.bias = EndpointBias::kDegreeProportional;
    config.compute_final_alpha = true;
    // Heavy churn can push the final graph past the exact solver's budget;
    // fall back to a high-effort ARW reference then (rows marked "~").
    config.compute_final_best = true;
    config.arw_iterations = 1500;
    const ExperimentResult result = RunExperiment(
        base,
        {"DGOneDIS", "DGTwoDIS", "DyARW", "DyOneSwap", "DyTwoSwap",
         "DyOneSwap*", "DyTwoSwap*"},
        config);
    const bool have_alpha = result.final_alpha >= 0;
    const int64_t alpha = have_alpha ? result.final_alpha : result.final_best;
    const AlgoRunResult& dg1 = FindRun(result, "DGOneDIS");
    const AlgoRunResult& dg2 = FindRun(result, "DGTwoDIS");
    const AlgoRunResult& dyarw = FindRun(result, "DyARW");
    const AlgoRunResult& one = FindRun(result, "DyOneSwap");
    const AlgoRunResult& two = FindRun(result, "DyTwoSwap");
    const AlgoRunResult& one_p = FindRun(result, "DyOneSwap*");
    const AlgoRunResult& two_p = FindRun(result, "DyTwoSwap*");
    table.AddRow({spec.name, FormatCount(config.num_updates),
                  alpha < 0 ? "n/a"
                            : FormatCount(alpha) + (have_alpha ? "" : "~"),
                  GapCell(dg1, alpha), AccuracyCell(dg1, alpha),
                  GapCell(dg2, alpha), AccuracyCell(dg2, alpha),
                  GapCell(dyarw, alpha), AccuracyCell(dyarw, alpha),
                  GapCell(one, alpha), AccuracyCell(one, alpha),
                  GapCell(one_p, alpha), GapCell(two, alpha),
                  AccuracyCell(two, alpha), GapCell(two_p, alpha)});
  }
  table.Print(stdout);
  std::printf(
      "\nExpected shape (paper): the Dy*-vs-DG* gap difference grows with "
      "the update count\n(compare against Table II). '~' marks rows where "
      "the exact solver timed out and the\nreference is a high-effort ARW "
      "solve instead of alpha.\n");
}

}  // namespace
}  // namespace dynmis

int main() {
  dynmis::Run();
  return 0;
}
