// Microbenchmarks (google-benchmark) of the core operations: per-update
// latency of each maintainer on a power-law graph, graph mutation
// primitives, and the static solvers used for initialization.

#include <benchmark/benchmark.h>

#include "dynmis/registry.h"
#include "src/graph/generators.h"
#include "src/graph/update_stream.h"
#include "src/static_mis/arw.h"
#include "src/static_mis/exact.h"
#include "src/static_mis/greedy.h"
#include "src/util/random.h"

namespace dynmis {
namespace {

EdgeListGraph BenchGraph(int n) {
  Rng rng(123);
  return ChungLuPowerLaw(n, 2.3, 12.0, &rng);
}

void BM_DynamicGraphEdgeChurn(benchmark::State& state) {
  const EdgeListGraph base = BenchGraph(static_cast<int>(state.range(0)));
  DynamicGraph g = base.ToDynamic();
  Rng rng(7);
  std::vector<std::pair<VertexId, VertexId>> edges = base.edges;
  for (auto _ : state) {
    const auto& [u, v] = edges[rng.NextBounded(edges.size())];
    if (g.HasEdge(u, v)) {
      g.RemoveEdgeBetween(u, v);
    } else {
      g.AddEdge(u, v);
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DynamicGraphEdgeChurn)->Arg(10000);

void UpdateLatency(benchmark::State& state, const std::string& algorithm) {
  const EdgeListGraph base = BenchGraph(static_cast<int>(state.range(0)));
  DynamicGraph g = base.ToDynamic();
  auto algo = MaintainerRegistry::Global().Create(algorithm, &g);
  algo->Initialize({});
  UpdateStreamOptions options;
  options.seed = 99;
  UpdateStreamGenerator gen(options);
  for (auto _ : state) {
    algo->Apply(gen.Next(g));
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_DyOneSwapUpdate(benchmark::State& state) {
  UpdateLatency(state, "DyOneSwap");
}
BENCHMARK(BM_DyOneSwapUpdate)->Arg(10000)->Arg(40000);

void BM_DyTwoSwapUpdate(benchmark::State& state) {
  UpdateLatency(state, "DyTwoSwap");
}
BENCHMARK(BM_DyTwoSwapUpdate)->Arg(10000)->Arg(40000);

void BM_DyArwUpdate(benchmark::State& state) { UpdateLatency(state, "DyARW"); }
BENCHMARK(BM_DyArwUpdate)->Arg(10000)->Arg(40000);

void BM_DgOneDisUpdate(benchmark::State& state) {
  UpdateLatency(state, "DGOneDIS");
}
BENCHMARK(BM_DgOneDisUpdate)->Arg(10000);

void BM_GreedyMis(benchmark::State& state) {
  const StaticGraph g = BenchGraph(static_cast<int>(state.range(0))).ToStatic();
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyMis(g));
  }
}
BENCHMARK(BM_GreedyMis)->Arg(10000);

void BM_ArwMis(benchmark::State& state) {
  const StaticGraph g = BenchGraph(static_cast<int>(state.range(0))).ToStatic();
  ArwOptions options;
  options.iterations = 50;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ArwMis(g, options));
  }
}
BENCHMARK(BM_ArwMis)->Arg(10000);

void BM_ExactSolve(benchmark::State& state) {
  const StaticGraph g = BenchGraph(static_cast<int>(state.range(0))).ToStatic();
  ExactMisOptions options;
  options.max_seconds = 5.0;
  int64_t solved = 0;
  for (auto _ : state) {
    ExactMisResult result = SolveExactMis(g, options);
    solved += result.solved ? 1 : 0;
    benchmark::DoNotOptimize(result);
  }
  state.counters["solved"] = static_cast<double>(solved);
}
BENCHMARK(BM_ExactSolve)->Arg(4000)->Iterations(3);

}  // namespace
}  // namespace dynmis
