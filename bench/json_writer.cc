#include "bench/json_writer.h"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "src/util/check.h"

namespace dynmis {
namespace bench {

void JsonWriter::Indent() {
  out_.append(2 * stack_.size(), ' ');
}

void JsonWriter::Prefix(bool is_key) {
  if (value_pending_) {
    // The value completing a "key": pair; no comma or newline.
    DYNMIS_CHECK(!is_key);
    value_pending_ = false;
    return;
  }
  if (!stack_.empty()) {
    DYNMIS_CHECK(is_key == (stack_.back() == Scope::kObject));
    if (has_elems_.back()) out_ += ',';
    has_elems_.back() = true;
    out_ += '\n';
    Indent();
  }
}

void JsonWriter::BeginObject() {
  Prefix(/*is_key=*/false);
  out_ += '{';
  stack_.push_back(Scope::kObject);
  has_elems_.push_back(false);
}

void JsonWriter::EndObject() {
  DYNMIS_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  const bool had = has_elems_.back();
  stack_.pop_back();
  has_elems_.pop_back();
  if (had) {
    out_ += '\n';
    Indent();
  }
  out_ += '}';
}

void JsonWriter::BeginArray() {
  Prefix(/*is_key=*/false);
  out_ += '[';
  stack_.push_back(Scope::kArray);
  has_elems_.push_back(false);
}

void JsonWriter::EndArray() {
  DYNMIS_CHECK(!stack_.empty() && stack_.back() == Scope::kArray);
  const bool had = has_elems_.back();
  stack_.pop_back();
  has_elems_.pop_back();
  if (had) {
    out_ += '\n';
    Indent();
  }
  out_ += ']';
}

void JsonWriter::Key(const std::string& key) {
  Prefix(/*is_key=*/true);
  AppendEscaped(key);
  out_ += ": ";
  value_pending_ = true;
}

void JsonWriter::String(const std::string& value) {
  Prefix(/*is_key=*/false);
  AppendEscaped(value);
}

void JsonWriter::AppendEscaped(const std::string& value) {
  out_ += '"';
  for (char c : value) {
    switch (c) {
      case '"':
        out_ += "\\\"";
        break;
      case '\\':
        out_ += "\\\\";
        break;
      case '\n':
        out_ += "\\n";
        break;
      case '\t':
        out_ += "\\t";
        break;
      case '\r':
        out_ += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

void JsonWriter::Int(int64_t value) {
  Prefix(/*is_key=*/false);
  out_ += std::to_string(value);
}

void JsonWriter::Uint(uint64_t value) {
  Prefix(/*is_key=*/false);
  out_ += std::to_string(value);
}

void JsonWriter::Double(double value) {
  if (!std::isfinite(value)) {
    Null();
    return;
  }
  Prefix(/*is_key=*/false);
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", value);
  out_ += buf;
}

void JsonWriter::Bool(bool value) {
  Prefix(/*is_key=*/false);
  out_ += value ? "true" : "false";
}

void JsonWriter::Null() {
  Prefix(/*is_key=*/false);
  out_ += "null";
}

std::string JsonWriter::Take() {
  DYNMIS_CHECK(stack_.empty());
  DYNMIS_CHECK(!value_pending_);
  out_ += '\n';
  return std::move(out_);
}

bool WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << content;
  return static_cast<bool>(out);
}

}  // namespace bench
}  // namespace dynmis
