// Table II: gap to the independence number (exact branch-and-reduce, the
// VCSolver stand-in) and accuracy on the 13 easy graphs after a batch of
// updates (the paper's 100,000; scaled to the stand-in sizes here). The
// gap* columns report DyOneSwap/DyTwoSwap with the perturbation option, as
// in the paper.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/graph/datasets.h"
#include "src/harness/experiment.h"
#include "src/harness/report.h"
#include "src/util/table.h"

namespace dynmis {
namespace {

void Run() {
  std::printf("=== Table II: gap to alpha(G) and accuracy on easy graphs "
              "(light batch, ~10%% of m) ===\n");
  bench::PrintScaleNote();
  TablePrinter table({"Graph", "#upd", "alpha", "DGOneDIS gap", "acc",
                      "DGTwoDIS gap", "acc", "DyARW gap", "acc",
                      "DyOneSwap gap", "acc", "gap*", "DyTwoSwap gap", "acc",
                      "gap*"});
  for (const DatasetSpec& spec : EasyDatasets()) {
    const EdgeListGraph base = GenerateDataset(spec);
    ExperimentConfig config;
    config.initial = InitialSolution::kExact;
    config.num_updates = bench::SmallBatch(base.NumEdges());
    config.stream.seed = spec.seed * 1009 + 1;
    config.stream.bias = EndpointBias::kDegreeProportional;
    config.compute_final_alpha = true;
    const ExperimentResult result = RunExperiment(
        base,
        {"DGOneDIS", "DGTwoDIS", "DyARW", "DyOneSwap", "DyTwoSwap",
         "DyOneSwap*", "DyTwoSwap*"},
        config);
    const int64_t alpha = result.final_alpha;
    const AlgoRunResult& dg1 = FindRun(result, "DGOneDIS");
    const AlgoRunResult& dg2 = FindRun(result, "DGTwoDIS");
    const AlgoRunResult& dyarw = FindRun(result, "DyARW");
    const AlgoRunResult& one = FindRun(result, "DyOneSwap");
    const AlgoRunResult& two = FindRun(result, "DyTwoSwap");
    const AlgoRunResult& one_p = FindRun(result, "DyOneSwap*");
    const AlgoRunResult& two_p = FindRun(result, "DyTwoSwap*");
    table.AddRow({spec.name, FormatCount(config.num_updates),
                  alpha < 0 ? "n/a" : FormatCount(alpha),
                  GapCell(dg1, alpha), AccuracyCell(dg1, alpha),
                  GapCell(dg2, alpha), AccuracyCell(dg2, alpha),
                  GapCell(dyarw, alpha), AccuracyCell(dyarw, alpha),
                  GapCell(one, alpha), AccuracyCell(one, alpha),
                  GapCell(one_p, alpha), GapCell(two, alpha),
                  AccuracyCell(two, alpha), GapCell(two_p, alpha)});
  }
  table.Print(stdout);
  std::printf(
      "\nExpected shape (paper): Dy* gaps <= DG* gaps on most graphs; "
      "DyTwoSwap smallest;\nperturbation (gap*) improves further; '^' marks "
      "solutions larger than the reference.\n");
}

}  // namespace
}  // namespace dynmis

int main() {
  dynmis::Run();
  return 0;
}
