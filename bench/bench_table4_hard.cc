// Table IV: gap to the best result (ARW local search on the final graph)
// on the hard graphs after the large update batch. Matching the paper,
// DGOneDIS / DGTwoDIS run under a wall-clock budget and the largest
// instances show them as DNF; the Dy* algorithms sometimes *beat* the ARW
// reference (rows marked with '^').

#include <cstdio>

#include "bench/bench_common.h"
#include "src/graph/datasets.h"
#include "src/harness/experiment.h"
#include "src/harness/report.h"
#include "src/util/table.h"

namespace dynmis {
namespace {

void Run() {
  std::printf(
      "=== Table IV: gap to the ARW best result on hard graphs "
      "(heavy batch, ~50%% of m) ===\n");
  bench::PrintScaleNote();
  TablePrinter table({"Graph", "#upd", "Best", "DGOneDIS", "DGTwoDIS",
                      "DyARW", "DyOneSwap", "(gap*)", "DyTwoSwap", "(gap*)"});
  for (const DatasetSpec& spec : HardDatasets()) {
    const EdgeListGraph base = GenerateDataset(spec);
    ExperimentConfig config;
    config.initial = InitialSolution::kArw;
    config.num_updates = bench::LargeBatch(base.NumEdges());
    config.stream.seed = spec.seed * 31 + 17;
    config.stream.bias = EndpointBias::kDegreeProportional;
    config.compute_final_best = true;
    config.arw_iterations = 600;
    // The paper's five-hour budget, shrunk proportionally to our scale.
    config.time_limit_seconds = 10.0;
    const ExperimentResult result = RunExperiment(
        base,
        {"DGOneDIS", "DGTwoDIS", "DyARW", "DyOneSwap", "DyTwoSwap",
         "DyOneSwap*", "DyTwoSwap*"},
        config);
    const int64_t best = result.final_best;
    const AlgoRunResult& dg1 = FindRun(result, "DGOneDIS");
    const AlgoRunResult& dg2 = FindRun(result, "DGTwoDIS");
    const AlgoRunResult& dyarw = FindRun(result, "DyARW");
    const AlgoRunResult& one = FindRun(result, "DyOneSwap");
    const AlgoRunResult& two = FindRun(result, "DyTwoSwap");
    const AlgoRunResult& one_p = FindRun(result, "DyOneSwap*");
    const AlgoRunResult& two_p = FindRun(result, "DyTwoSwap*");
    table.AddRow({spec.name, FormatCount(config.num_updates),
                  best < 0 ? "n/a" : FormatCount(best),
                  GapCell(dg1, best), GapCell(dg2, best), GapCell(dyarw, best),
                  GapCell(one, best), "(" + GapCell(one_p, best) + ")",
                  GapCell(two, best), "(" + GapCell(two_p, best) + ")"});
  }
  table.Print(stdout);
  std::printf(
      "\nExpected shape (paper): DyTwoSwap smallest gaps, frequently beating "
      "the reference ('^');\nDyARW ~ DyOneSwap; DG* lag and hit the budget "
      "('-' = DNF) on the largest graphs.\n");
}

}  // namespace
}  // namespace dynmis

int main() {
  dynmis::Run();
  return 0;
}
