// Fig 7: the two optimizations.
//  (a, b) lazy collection: response time and memory of DyOneSwap/DyTwoSwap
//         eager vs lazy - memory drops sharply, time is comparable or
//         better for small k;
//  (c)    perturbation: small time overhead buying the gap* improvements;
//  (d)    lazy-vs-eager time as a function of k (the trade-off flips as k
//         grows), via the generic KSwap maintainer.

#include <cstdio>

#include "bench/bench_common.h"
#include "dynmis/registry.h"
#include "src/graph/datasets.h"
#include "src/harness/experiment.h"
#include "src/harness/report.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace dynmis {
namespace {

const std::vector<std::string> kFigGraphs = {"web-BerkStan", "hollywood",
                                             "com-lj", "soc-LiveJournal"};

void RunLazyAblation(int updates) {
  std::printf("\n--- Fig 7(a,b): lazy collection (time / memory) ---\n");
  TablePrinter table({"Graph", "DyOneSwap t", "lazy t", "DyTwoSwap t",
                      "lazy t", "DyOneSwap mem", "lazy mem", "DyTwoSwap mem",
                      "lazy mem"});
  for (const std::string& name : kFigGraphs) {
    const DatasetSpec* spec = FindDataset(name);
    const EdgeListGraph base = GenerateDataset(*spec);
    ExperimentConfig config;
    config.initial = InitialSolution::kArw;
    config.arw_iterations = 200;
    config.num_updates = updates;
    config.stream.seed = spec->seed * 3 + 1;
    config.stream.bias = EndpointBias::kDegreeProportional;
    const ExperimentResult result = RunExperiment(
        base,
        {"DyOneSwap", "DyOneSwap-lazy", "DyTwoSwap", "DyTwoSwap-lazy"},
        config);
    const AlgoRunResult& one = FindRun(result, "DyOneSwap");
    const AlgoRunResult& one_l = FindRun(result, "DyOneSwap-lazy");
    const AlgoRunResult& two = FindRun(result, "DyTwoSwap");
    const AlgoRunResult& two_l = FindRun(result, "DyTwoSwap-lazy");
    table.AddRow({name, TimeCell(one), TimeCell(one_l), TimeCell(two),
                  TimeCell(two_l), MemoryCell(one), MemoryCell(one_l),
                  MemoryCell(two), MemoryCell(two_l)});
  }
  table.Print(stdout);
}

void RunPerturbation(int updates) {
  std::printf("\n--- Fig 7(c): perturbation response-time overhead ---\n");
  TablePrinter table({"Graph", "DyOneSwap", "DyOneSwap*", "DyTwoSwap",
                      "DyTwoSwap*"});
  for (const std::string& name : kFigGraphs) {
    const DatasetSpec* spec = FindDataset(name);
    const EdgeListGraph base = GenerateDataset(*spec);
    ExperimentConfig config;
    config.initial = InitialSolution::kArw;
    config.arw_iterations = 200;
    config.num_updates = updates;
    config.stream.seed = spec->seed * 5 + 9;
    config.stream.bias = EndpointBias::kDegreeProportional;
    const ExperimentResult result = RunExperiment(
        base, {"DyOneSwap", "DyOneSwap*", "DyTwoSwap", "DyTwoSwap*"},
        config);
    table.AddRow({name, TimeCell(FindRun(result, "DyOneSwap")),
                  TimeCell(FindRun(result, "DyOneSwap*")),
                  TimeCell(FindRun(result, "DyTwoSwap")),
                  TimeCell(FindRun(result, "DyTwoSwap*"))});
  }
  table.Print(stdout);
}

void RunLazyVsK(int updates) {
  std::printf("\n--- Fig 7(d): lazy time improvement vs k ---\n");
  const DatasetSpec* spec = FindDataset("com-lj");
  const EdgeListGraph base = GenerateDataset(*spec);
  const DynamicGraph initial = base.ToDynamic();
  UpdateStreamOptions stream;
  stream.seed = 4242;
  const std::vector<GraphUpdate> updates_seq =
      MakeUpdateSequence(initial, updates, stream);
  const std::vector<VertexId> initial_solution = ComputeInitialSolution(
      base, InitialSolution::kArw, /*arw_iterations=*/200,
      /*exact_node_budget=*/0);
  TablePrinter table({"k", "eager time", "lazy time", "lazy/eager"});
  for (int k = 1; k <= 4; ++k) {
    double seconds[2];
    for (const bool lazy : {false, true}) {
      DynamicGraph g = initial;
      MaintainerConfig config("KSwap");
      config.k = k;
      config.lazy = lazy;
      auto algo = MaintainerRegistry::Global().Create(config, &g);
      algo->Initialize(initial_solution);
      Timer timer;
      for (const GraphUpdate& update : updates_seq) algo->Apply(update);
      seconds[lazy ? 1 : 0] = timer.ElapsedSeconds();
    }
    table.AddRow({std::to_string(k), FormatDouble(seconds[0], 3) + "s",
                  FormatDouble(seconds[1], 3) + "s",
                  FormatDouble(seconds[1] / seconds[0], 2)});
  }
  table.Print(stdout);
}

void Run() {
  const int updates = bench::ScaledUpdates(20000);
  std::printf("=== Fig 7: optimization ablations (%d updates) ===\n", updates);
  bench::PrintScaleNote();
  RunLazyAblation(updates);
  RunPerturbation(updates);
  RunLazyVsK(bench::ScaledUpdates(8000));
  std::printf(
      "\nExpected shape (paper): lazy memory << eager; lazy time comparable "
      "or better at k=1,\ndeteriorating as k grows (7(d) ratio rises); "
      "perturbation costs a little extra time.\n");
}

}  // namespace
}  // namespace dynmis

int main() {
  dynmis::Run();
  return 0;
}
