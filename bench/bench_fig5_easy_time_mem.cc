// Fig 5: (a) response time for the small update batch on all 13 easy
// graphs, (b) structure memory usage, (c) response time for the large
// update batch on the last seven easy graphs.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/graph/datasets.h"
#include "src/harness/experiment.h"
#include "src/harness/report.h"
#include "src/util/table.h"

namespace dynmis {
namespace {

const std::vector<MaintainerConfig> kAlgos = {
    "DGOneDIS", "DGTwoDIS", "DyARW", "DyOneSwap", "DyTwoSwap"};

void RunBatch(const std::vector<DatasetSpec>& specs, bool heavy,
              const char* title, bool with_memory) {
  std::printf("\n--- %s ---\n", title);
  std::vector<std::string> headers = {"Graph", "#upd"};
  for (const MaintainerConfig& algo : kAlgos) headers.push_back(algo.algorithm);
  TablePrinter time_table(headers);
  TablePrinter mem_table(headers);
  for (const DatasetSpec& spec : specs) {
    const EdgeListGraph base = GenerateDataset(spec);
    ExperimentConfig config;
    config.initial = InitialSolution::kArw;
    config.arw_iterations = 200;
    config.num_updates = heavy ? bench::LargeBatch(base.NumEdges())
                               : bench::SmallBatch(base.NumEdges());
    config.stream.seed = spec.seed * 577 + 29;
    config.stream.bias = EndpointBias::kDegreeProportional;
    const ExperimentResult result = RunExperiment(base, kAlgos, config);
    std::vector<std::string> time_row = {spec.name,
                                         FormatCount(config.num_updates)};
    std::vector<std::string> mem_row = {spec.name,
                                        FormatCount(config.num_updates)};
    for (const MaintainerConfig& algo : kAlgos) {
      const AlgoRunResult& run = FindRun(result, algo.algorithm);
      time_row.push_back(TimeCell(run));
      mem_row.push_back(MemoryCell(run));
    }
    time_table.AddRow(std::move(time_row));
    mem_table.AddRow(std::move(mem_row));
  }
  std::printf("response time:\n");
  time_table.Print(stdout);
  if (with_memory) {
    std::printf("\nmemory usage (Fig 5(b)):\n");
    mem_table.Print(stdout);
  }
}

void Run() {
  std::printf("=== Fig 5: response time & memory on easy graphs ===\n");
  bench::PrintScaleNote();
  RunBatch(EasyDatasets(), /*heavy=*/false,
           "Fig 5(a,b): all easy graphs, light batch", /*with_memory=*/true);
  const auto& easy = EasyDatasets();
  const std::vector<DatasetSpec> last7(easy.begin() + 6, easy.end());
  RunBatch(last7, /*heavy=*/true,
           "Fig 5(c): last seven easy graphs, heavy batch",
           /*with_memory=*/false);
  std::printf(
      "\nExpected shape (paper): DyOneSwap fastest; DyARW slightly slower "
      "(ordered-structure upkeep);\nDyTwoSwap a little above DyOneSwap; DG* "
      "slowest on dense graphs and growing with batch size;\nmemory: Dy* > "
      "DG*, DyTwoSwap > DyOneSwap.\n");
}

}  // namespace
}  // namespace dynmis

int main() {
  dynmis::Run();
  return 0;
}
