// Fig 9: effect of the user parameter k (the framework knob) on response
// time and solution quality, via the generic KSwap maintainer with
// k = 1..4 over a fixed graph and update stream.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/graph/datasets.h"
#include "src/harness/experiment.h"
#include "src/harness/report.h"
#include "src/util/table.h"

namespace dynmis {
namespace {

void Run() {
  const int updates = bench::ScaledUpdates(10000);
  std::printf("=== Fig 9: effect of k (%d updates) ===\n", updates);
  bench::PrintScaleNote();
  const DatasetSpec* spec = FindDataset("com-lj");
  const EdgeListGraph base = GenerateDataset(*spec);
  ExperimentConfig config;
  config.initial = InitialSolution::kArw;
  config.arw_iterations = 200;
  config.num_updates = updates;
  config.stream.seed = 987654;
    config.stream.bias = EndpointBias::kDegreeProportional;
  config.compute_final_alpha = true;
  const ExperimentResult result = RunExperiment(
      base, {"KSwap1", "KSwap2", "KSwap3", "KSwap4"}, config);
  TablePrinter table({"k", "time", "size", "gap", "accuracy"});
  for (int k = 1; k <= 4; ++k) {
    const AlgoRunResult& run =
        FindRun(result, "KSwap(k=" + std::to_string(k) + ")");
    table.AddRow({std::to_string(k), TimeCell(run),
                  FormatCount(run.final_size),
                  GapCell(run, result.final_alpha),
                  AccuracyCell(run, result.final_alpha)});
  }
  table.Print(stdout);
  std::printf(
      "\nExpected shape (paper): larger k -> larger solutions and higher "
      "time; accuracy already\nstrong at k = 1 (the theoretical guarantee "
      "does not improve past k = 1, Theorem 3).\n");
}

}  // namespace
}  // namespace dynmis

int main() {
  dynmis::Run();
  return 0;
}
