// Ablation: deferred-restoration batch processing (this library's extension
// in the spirit of the paper's future-work note on further optimization
// strategies). Applies the heavy update batch to DyOneSwap/DyTwoSwap once
// per-update and once in blocks of varying size, comparing throughput and
// final solution size. Expected: batching amortizes overlapping cascades
// (higher throughput at larger blocks) at identical final quality class
// (the k-maximality guarantee holds at block boundaries).

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "dynmis/registry.h"
#include "src/graph/datasets.h"
#include "src/graph/update_stream.h"
#include "src/util/table.h"
#include "src/util/timer.h"

namespace dynmis {
namespace {

void Run() {
  std::printf("=== Ablation: batch update processing ===\n");
  bench::PrintScaleNote();
  const DatasetSpec* spec = FindDataset("soc-LiveJournal");
  const EdgeListGraph base = GenerateDataset(*spec);
  const int total = bench::LargeBatch(base.NumEdges());
  UpdateStreamOptions stream;
  stream.seed = 31415;
  stream.bias = EndpointBias::kDegreeProportional;
  const std::vector<GraphUpdate> updates =
      MakeUpdateSequence(base.ToDynamic(), total, stream);
  std::printf("dataset %s, %d updates\n", spec->name.c_str(), total);

  TablePrinter table(
      {"algorithm", "block", "time", "us/update", "final |I|"});
  for (const bool two_swap : {false, true}) {
    for (const int block : {1, 16, 256, 4096}) {
      DynamicGraph g = base.ToDynamic();
      std::unique_ptr<DynamicMisMaintainer> algo =
          MaintainerRegistry::Global().Create(
              two_swap ? "DyTwoSwap" : "DyOneSwap", &g);
      algo->Initialize({});
      Timer timer;
      if (block == 1) {
        for (const GraphUpdate& u : updates) algo->Apply(u);
      } else {
        for (size_t start = 0; start < updates.size();
             start += static_cast<size_t>(block)) {
          const auto end =
              std::min(start + static_cast<size_t>(block), updates.size());
          algo->ApplyBatch({updates.begin() + static_cast<long>(start),
                            updates.begin() + static_cast<long>(end)});
        }
      }
      const double seconds = timer.ElapsedSeconds();
      table.AddRow({algo->Name(), FormatCount(block),
                    FormatDouble(seconds, 3) + "s",
                    FormatDouble(seconds / total * 1e6, 2),
                    FormatCount(algo->SolutionSize())});
    }
  }
  table.Print(stdout);
  std::printf(
      "\nExpected shape: us/update falls as the block grows; final size "
      "stays in the same\nquality class (k-maximal at every block "
      "boundary).\n");
}

}  // namespace
}  // namespace dynmis

int main() {
  dynmis::Run();
  return 0;
}
