// Unified benchmark driver: runs named scenarios (easy / hard / powerlaw
// update workloads x maintainer x batch regime) and emits one machine-
// readable BENCH_<scenario>.json per scenario, so every PR can compare its
// perf numbers against the committed baseline of the previous one.
//
// Per (algorithm, batch regime) the driver reports:
//   * ops/sec over the whole update sequence,
//   * p50/p99 per-op latency (single-op regime, via MisEngine's per-update
//     observer hook) or per-batch latency (batch regime),
//   * peak memory (maintainer structures + graph, sampled periodically),
//   * solution quality (final size, and relative to a min-degree greedy
//     reference on the final graph).
//
// Usage:
//   bench_driver --list
//   bench_driver --scenario smoke [--out PATH]
//   bench_driver --scenario hard --snapshot-every 10000
//   bench_driver --scenario hard --shards 4
//   DYNMIS_BENCH_SCALE=0.1 bench_driver --scenario hard
//
// Update counts scale with DYNMIS_BENCH_SCALE (see bench_common.h); the
// committed BENCH_*.json files are measured at scale 1. The scenario-to-
// paper mapping lives in bench/EXPERIMENTS.md.
//
// --shards N appends a "sharded" block to the JSON: the same update
// sequence replayed through a ShardedMisEngine (DyTwoSwap per shard, batch
// routing) at 1 shard and at N shards — ops/sec for both, the scaling
// ratio, solution quality vs the greedy reference, the cut-edge fraction,
// and an independence verification of the final solution against an
// independently maintained replica graph. The block is informational for
// the regression gate (tools/check_bench_regression.py ignores it); the
// committed headline numbers live in bench/EXPERIMENTS.md. cpu_count
// records how many hardware threads the measuring machine exposed, since
// shard scaling numbers are meaningless without it.
//
// The "massive" scenario pulls its graph through the streaming ingester
// (src/ingest) — a generated ~2.2M-edge power-law edge file, or
// $DYNMIS_MASSIVE_EDGES when set — and adds an "ingest" block to the JSON
// (load time, bytes/edge, peak RSS). The "temporal" and "storm" scenarios
// replace the random update stream with a sliding-window stream where every
// insert expires after a TTL, and add a "temporal" block (deletion share,
// window peak, expiry backlog).
//
// --snapshot-every N (single-op regime only) measures the durability tax:
// every N applied updates the engine is serialized to an in-memory sink
// inside the timed loop, and after the run the last snapshot is restored
// and the remaining update suffix replayed on the restored engine. The
// per-run JSON grows a "snapshot" object (save cost, size, restore cost,
// and whether the resumed engine converged to the identical solution).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "bench/json_writer.h"
#include "dynmis/dynmis.h"
#include "dynmis/workload.h"
#include "src/serve/workload.h"
#include "src/util/timer.h"

namespace dynmis {
namespace bench {
namespace {

struct Scenario {
  std::string name;
  std::string description;
  std::string graph_name;
  std::function<EdgeListGraph()> make_graph;
  std::vector<MaintainerConfig> algos;
  // Update count before DYNMIS_BENCH_SCALE; <= 0 means "derive from m".
  int base_updates = 0;
  std::function<int(int64_t m)> updates_from_m;
  UpdateStreamOptions stream;
  // Batch regimes to run; 1 = single-op (per-op latency percentiles).
  std::vector<int> batch_sizes = {1, 1024};
  // Ingested scenario: the graph comes through the streaming ingester
  // (src/ingest) instead of an in-memory generator, and the JSON gains an
  // "ingest" block with the memory-budget numbers.
  bool ingested = false;
  // Temporal scenario: the update sequence is a sliding-window stream
  // (every insert expires after a TTL) and the JSON gains a "temporal"
  // block with the window shape.
  bool temporal = false;
  ingest::TemporalStreamOptions window;
};

// Graphs and stream seeds come from the shared scenario definitions in
// src/serve/workload.{h,cc}, so the serving layer's load generator and
// this driver measure the identical base graphs by construction; the
// bench-specific shape (algorithm list, batch regimes, update sizing)
// lives here.
Scenario FromWorkload(const std::string& name) {
  Scenario s;
  s.name = name;
  s.make_graph = [name] { return serve::BuildServeWorkloadGraph(name); };
  s.stream = serve::ServeWorkloadStream(name);
  return s;
}

// The TTL tracks DYNMIS_BENCH_SCALE like the update counts do: a scaled-
// down run still pushes a comparable fraction of its stream past the TTL,
// so quick CI runs exercise real expiries instead of an all-insert prefix.
ingest::TemporalStreamOptions ServeWindowScaled(const std::string& name) {
  ingest::TemporalStreamOptions window = serve::ServeWorkloadWindow(name);
  window.ttl_ticks = std::max<uint32_t>(
      64, static_cast<uint32_t>(window.ttl_ticks * BenchScale()));
  // Scale the storm burst with the update budget too, so a reduced-scale
  // run still fits several insert-expire cycles (and thus real deletion
  // batches) into its shortened stream.
  if (window.storm) {
    window.storm_burst = std::max<int>(
        8, static_cast<int>(window.storm_burst * BenchScale()));
  }
  return window;
}

std::vector<Scenario> BuildScenarios() {
  std::vector<Scenario> scenarios;
  {
    // Tiny and fast: the CI regression hook. Exercises both regimes and the
    // full JSON schema in a couple of seconds even at scale 1.
    Scenario s = FromWorkload("smoke");
    s.description = "tiny power-law graph, uniform churn (CI hook)";
    s.graph_name = "chung-lu-1500";
    s.algos = {"DyOneSwap", "DyTwoSwap"};
    s.base_updates = 2000;
    s.batch_sizes = {1, 256};
    scenarios.push_back(std::move(s));
  }
  {
    // Easy-instance regime (paper Tables II/III): light churn relative to m.
    Scenario s = FromWorkload("easy");
    s.description = "easy dataset stand-in, light batch (~m/10 updates)";
    s.graph_name = "web-Google";
    s.algos = {"DyOneSwap", "DyTwoSwap", "DyARW"};
    s.updates_from_m = [](int64_t m) { return SmallBatch(m); };
    scenarios.push_back(std::move(s));
  }
  {
    // Hard-instance regime (paper Table IV / Fig 6): heavy degree-biased
    // churn. The per-PR DyTwoSwap throughput acceptance numbers come from
    // this scenario's single-op regime.
    Scenario s = FromWorkload("hard");
    s.description =
        "hard dataset stand-in, heavy batch (~m/2 updates), degree-biased";
    s.graph_name = "soc-pokec";
    s.algos = {"DyOneSwap", "DyTwoSwap", "DyTwoSwap*"};
    s.updates_from_m = [](int64_t m) { return LargeBatch(m); };
    scenarios.push_back(std::move(s));
  }
  {
    // Power-law random graph (paper Fig 10), including the generic k-swap
    // maintainer at k=3.
    Scenario s = FromWorkload("powerlaw");
    s.description = "configuration-model power-law graph, uniform churn";
    s.graph_name = "plrg-12000";
    s.algos = {"DyOneSwap", "DyTwoSwap", "KSwap3"};
    s.base_updates = 20000;
    scenarios.push_back(std::move(s));
  }
  {
    // SNAP-scale ingested graph (>= 2M edges through the streaming
    // ingester): the scenario the paper's real-dataset tables run at, with
    // the ingest memory budget reported alongside the update numbers.
    Scenario s = FromWorkload("massive");
    s.ingested = true;
    s.description =
        "ingested ~2.2M-edge power-law edge file (streaming ingester)";
    s.graph_name = "ingested-powerlaw-200k";
    s.algos = {"DyTwoSwap"};
    s.updates_from_m = [](int64_t m) {
      return ScaledUpdates(static_cast<int>(m / 20));
    };
    s.batch_sizes = {1, 4096};
    scenarios.push_back(std::move(s));
  }
  {
    // Sliding-window stream: inserts expire after a TTL, so the workload
    // turns deletion-heavy in the steady state.
    Scenario s = FromWorkload("temporal");
    s.temporal = true;
    s.window = ServeWindowScaled("temporal");
    s.description = "sliding-window stream: every insert expires after a TTL";
    s.graph_name = "chung-lu-20000";
    s.algos = {"DyOneSwap", "DyTwoSwap"};
    s.base_updates = 40000;
    scenarios.push_back(std::move(s));
  }
  {
    // Adversarial variant: aligned insert bursts make whole batches expire
    // on a single tick, the worst case for the expiry backlog.
    Scenario s = FromWorkload("storm");
    s.temporal = true;
    s.window = ServeWindowScaled("storm");
    s.description =
        "deletion storm: aligned insert bursts expire as one batch";
    s.graph_name = "chung-lu-20000";
    s.algos = {"DyTwoSwap"};
    s.base_updates = 40000;
    scenarios.push_back(std::move(s));
  }
  return scenarios;
}

// Snapshot-cost measurements for one run (populated when --snapshot-every
// is active and the regime is single-op).
struct SnapshotResult {
  int every = 0;          // 0 = disabled for this run.
  int64_t count = 0;      // Snapshots taken during the timed loop.
  double save_total_seconds = 0;
  size_t last_bytes = 0;  // Serialized size of the last snapshot.
  double restore_seconds = 0;
  // Suffix replay on the restored engine reproduced the original run's
  // final solution exactly.
  bool resume_matches = false;
};

struct RunResult {
  std::string algorithm;
  int batch_size = 1;
  int64_t updates = 0;
  double total_seconds = 0;
  double ops_per_sec = 0;
  double latency_p50_us = 0;
  double latency_p99_us = 0;
  // "op" for batch_size 1, else "batch": what the percentiles measure.
  std::string latency_unit;
  size_t peak_memory_bytes = 0;
  int64_t final_solution_size = 0;
  double quality_vs_greedy = 0;
  SnapshotResult snapshot;
};

// Sorted copy of the engine's current solution (for exact-set comparison).
std::vector<VertexId> SortedSolution(const MisEngine& engine) {
  std::vector<VertexId> solution;
  engine.CollectSolution(&solution);
  std::sort(solution.begin(), solution.end());
  return solution;
}

// One sharded measurement (see the "sharded" block description up top).
struct ShardedRunResult {
  int shards = 0;
  std::string partition;
  bool async_resolver = false;
  int64_t updates = 0;
  double total_seconds = 0;
  double ops_per_sec = 0;
  // Number of CollectSolution barriers in the timed region (one per
  // kBarrierEveryOps chunk, like a served workload's periodic queries).
  int64_t barriers = 0;
  // Cumulative wall time across those barriers (drain every shard and
  // the resolver, then run the resolution pass) — the number the
  // asynchronous resolver exists to shrink: the sequential resolver
  // recomputes the full cut-edge conflict scan at every barrier, the
  // asynchronous one only finalizes its standing conflict set.
  double barrier_seconds = 0;
  // Engine-reported time inside resolution passes only (both barriers:
  // the post-Initialize one and the final one).
  double resolve_seconds = 0;
  int64_t final_solution_size = 0;
  double quality_vs_greedy = 0;
  double cut_edge_fraction = 0;
  int64_t conflicts = 0;
  int64_t evictions = 0;
  int64_t readded = 0;
  int64_t transitions_consumed = 0;
  bool verified_independent = false;
};

// True when `solution` is an independent set of `g` with every member
// alive (bitmap + one edge scan; the brute-force test verifiers are too
// slow at bench scale).
bool VerifyIndependent(const DynamicGraph& g,
                       const std::vector<VertexId>& solution) {
  std::vector<uint8_t> member(g.VertexCapacity(), 0);
  for (const VertexId v : solution) {
    if (!g.IsVertexAlive(v) || member[v]) return false;
    member[v] = 1;
  }
  for (const auto& [u, v] : g.EdgeList()) {
    if (member[u] && member[v]) return false;
  }
  return true;
}

ShardedRunResult RunSharded(const EdgeListGraph& base,
                            const std::vector<GraphUpdate>& updates,
                            const DynamicGraph& final_graph, int shards,
                            int batch_size, int64_t greedy_reference,
                            PartitionStrategy partition,
                            bool async_resolver) {
  ShardedRunResult result;
  result.shards = shards;
  result.partition = PartitionStrategyName(partition);
  result.updates = static_cast<int64_t>(updates.size());

  ShardedEngineOptions options;
  options.num_shards = shards;
  options.block_ops = batch_size;
  options.partition = partition;
  options.async_resolver = async_resolver;
  auto engine = ShardedMisEngine::Create(base, {"DyTwoSwap"}, options);
  DYNMIS_CHECK(engine != nullptr);
  engine->Initialize();

  // Timed region: routing + shard work + every barrier and resolution
  // pass, so the repair cost is charged to the throughput number. The
  // sequence is applied in chunks with a CollectSolution barrier after
  // each one — the cadence a served workload imposes through periodic
  // queries, and the regime the asynchronous resolver exists for: the
  // sequential resolver recomputes the full cut-edge conflict scan at
  // every barrier, while the asynchronous worker keeps a standing
  // conflict set so each barrier only drains a tail and finalizes.
  // barrier_seconds accumulates the wall time of all barriers.
  constexpr size_t kBarrierEveryOps = 8192;
  Timer timer;
  std::vector<VertexId> solution;
  for (size_t begin = 0; begin < updates.size();) {
    const size_t end = std::min(updates.size(), begin + kBarrierEveryOps);
    engine->ApplyBatch({updates.begin() + static_cast<ptrdiff_t>(begin),
                        updates.begin() + static_cast<ptrdiff_t>(end)});
    Timer barrier_timer;
    engine->Flush();
    solution = engine->Solution();
    result.barrier_seconds += barrier_timer.ElapsedSeconds();
    ++result.barriers;
    begin = end;
  }
  result.total_seconds = timer.ElapsedSeconds();

  result.ops_per_sec =
      result.total_seconds > 0
          ? static_cast<double>(result.updates) / result.total_seconds
          : 0;
  result.final_solution_size = static_cast<int64_t>(solution.size());
  result.quality_vs_greedy =
      greedy_reference > 0
          ? static_cast<double>(result.final_solution_size) /
                static_cast<double>(greedy_reference)
          : 0;
  const ShardedStats stats = engine->ShardStats();
  result.async_resolver = stats.async_resolver;
  result.cut_edge_fraction = stats.cut_edge_fraction;
  result.resolve_seconds = stats.resolve_seconds;
  result.conflicts = stats.conflicts;
  result.evictions = stats.evictions;
  result.readded = stats.readded;
  result.transitions_consumed = stats.transitions_consumed;
  result.verified_independent = VerifyIndependent(final_graph, solution);
  return result;
}

RunResult RunOne(const EdgeListGraph& base,
                 const std::vector<GraphUpdate>& updates,
                 const MaintainerConfig& config, int batch_size,
                 int64_t greedy_reference, int snapshot_every) {
  RunResult result;
  result.batch_size = batch_size;
  result.updates = static_cast<int64_t>(updates.size());
  result.latency_unit = batch_size == 1 ? "op" : "batch";

  auto engine = MisEngine::Create(base, config);
  DYNMIS_CHECK(engine != nullptr);
  engine->Initialize();

  std::vector<double> latencies;
  latencies.reserve(updates.size() / std::max(batch_size, 1) + 1);
  if (batch_size == 1) {
    engine->SetUpdateObserver(
        [&](const GraphUpdate&, int64_t, double seconds) {
          latencies.push_back(seconds);
        });
  }

  size_t peak_memory = 0;
  auto sample_memory = [&] {
    const EngineStats stats = engine->Stats();
    peak_memory = std::max(
        peak_memory, stats.structure_memory_bytes + stats.graph_memory_bytes);
  };
  sample_memory();

  // Periodic serialization inside the timed loop (single-op regime only).
  // The durability cost lands in total_seconds / ops_per_sec; the per-op
  // latency percentiles exclude it (the observer times only the Apply
  // calls), so compare ops_per_sec against a plain run to size the tax.
  const bool snapshotting = snapshot_every > 0 && batch_size == 1;
  std::string last_snapshot;
  size_t last_snapshot_index = 0;
  SnapshotResult snap;
  snap.every = snapshotting ? snapshot_every : 0;

  constexpr size_t kMemorySampleEvery = 1024;
  Timer timer;
  if (batch_size == 1) {
    size_t since_sample = 0;
    size_t since_snapshot = 0;
    size_t applied = 0;
    for (const GraphUpdate& update : updates) {
      engine->Apply(update);
      ++applied;
      if (++since_sample >= kMemorySampleEvery) {
        since_sample = 0;
        sample_memory();
      }
      if (snapshotting && ++since_snapshot >= static_cast<size_t>(
                                                  snapshot_every)) {
        since_snapshot = 0;
        Timer save_timer;
        std::ostringstream sink;
        const SnapshotStatus status = engine->SaveSnapshot(sink);
        snap.save_total_seconds += save_timer.ElapsedSeconds();
        DYNMIS_CHECK(status.ok);
        ++snap.count;
        last_snapshot = std::move(sink).str();
        last_snapshot_index = applied;
      }
    }
  } else {
    std::vector<GraphUpdate> block;
    for (size_t i = 0; i < updates.size(); i += batch_size) {
      const size_t end = std::min(updates.size(), i + batch_size);
      block.assign(updates.begin() + i, updates.begin() + end);
      Timer batch_timer;
      engine->ApplyBatch(block);
      latencies.push_back(batch_timer.ElapsedSeconds());
      sample_memory();
    }
  }
  result.total_seconds = timer.ElapsedSeconds();
  sample_memory();

  result.algorithm = engine->Stats().algorithm;
  result.ops_per_sec = result.total_seconds > 0
                           ? static_cast<double>(result.updates) /
                                 result.total_seconds
                           : 0;
  std::sort(latencies.begin(), latencies.end());
  result.latency_p50_us = Percentile(latencies, 0.50) * 1e6;
  result.latency_p99_us = Percentile(latencies, 0.99) * 1e6;
  result.peak_memory_bytes = peak_memory;
  result.final_solution_size = engine->SolutionSize();
  result.quality_vs_greedy =
      greedy_reference > 0 ? static_cast<double>(result.final_solution_size) /
                                 static_cast<double>(greedy_reference)
                           : 0;

  // Restore-then-resume: load the last snapshot, replay the remaining
  // suffix, and require the identical final solution set — the round-trip
  // invariant measured at benchmark scale.
  if (snapshotting && snap.count > 0) {
    snap.last_bytes = last_snapshot.size();
    std::istringstream source(last_snapshot);
    Timer restore_timer;
    SnapshotStatus status;
    std::unique_ptr<MisEngine> restored =
        MisEngine::LoadSnapshot(source, &status);
    snap.restore_seconds = restore_timer.ElapsedSeconds();
    DYNMIS_CHECK(restored != nullptr);
    for (size_t i = last_snapshot_index; i < updates.size(); ++i) {
      restored->Apply(updates[i]);
    }
    snap.resume_matches = SortedSolution(*restored) == SortedSolution(*engine);
  }
  result.snapshot = snap;
  return result;
}

int RunScenario(const Scenario& scenario, const std::string& out_path,
                int snapshot_every, int sharded_shards,
                PartitionStrategy partition) {
  std::printf("scenario %s: %s\n", scenario.name.c_str(),
              scenario.description.c_str());
  ingest::IngestReport ingest_report;
  const EdgeListGraph base =
      scenario.ingested ? serve::BuildMassiveWorkloadGraph(&ingest_report)
                        : scenario.make_graph();
  if (scenario.ingested) {
    std::printf(
        "  ingest: %lld edges in %.2fs, %.1f bytes/edge, peak RSS %zu MB%s\n",
        static_cast<long long>(ingest_report.edges),
        ingest_report.load_seconds, ingest_report.bytes_per_edge,
        ingest_report.peak_rss_bytes >> 20,
        ingest_report.header_reserved ? " (header reserved)" : "");
  }
  const int num_updates =
      scenario.updates_from_m
          ? scenario.updates_from_m(base.NumEdges())
          : ScaledUpdates(scenario.base_updates);
  std::printf("  graph %s: n=%d m=%lld, %d updates\n",
              scenario.graph_name.c_str(), base.n,
              static_cast<long long>(base.NumEdges()), num_updates);

  // One shared update sequence: every (algorithm, regime) run replays the
  // identical ops, so numbers are comparable within and across scenarios.
  DynamicGraph scratch = base.ToDynamic();
  ingest::TemporalStats temporal_stats;
  const std::vector<GraphUpdate> updates =
      scenario.temporal
          ? ingest::MakeTemporalSequence(scratch, num_updates,
                                         scenario.window, &temporal_stats)
          : MakeUpdateSequence(scratch, num_updates, scenario.stream);
  if (scenario.temporal) {
    std::printf(
        "  temporal: ttl=%u, %lld inserts / %lld expiries (%.0f%% "
        "deletions), window peak %zu edges, expiry backlog peak %zu\n",
        temporal_stats.ttl_ticks,
        static_cast<long long>(temporal_stats.inserts),
        static_cast<long long>(temporal_stats.expiries),
        temporal_stats.deletion_share * 100, temporal_stats.window_peak_edges,
        temporal_stats.expiry_backlog_peak);
  }

  // Greedy quality reference on the final graph (the sequence is
  // deterministic, so every run ends on the same graph).
  for (const GraphUpdate& update : updates) ApplyUpdate(&scratch, update);
  const int64_t greedy_reference =
      static_cast<int64_t>(GreedyMis(StaticGraph::FromDynamic(scratch)).size());

  std::vector<RunResult> runs;
  for (const MaintainerConfig& algo : scenario.algos) {
    for (int batch_size : scenario.batch_sizes) {
      RunResult run = RunOne(base, updates, algo, batch_size,
                             greedy_reference, snapshot_every);
      std::printf(
          "  %-12s batch=%-5d %10.0f ops/s  p50=%8.2fus p99=%8.2fus  "
          "peak=%8zuKB  |I|=%lld (%.3f of greedy)\n",
          run.algorithm.c_str(), run.batch_size, run.ops_per_sec,
          run.latency_p50_us, run.latency_p99_us, run.peak_memory_bytes / 1024,
          static_cast<long long>(run.final_solution_size),
          run.quality_vs_greedy);
      if (run.snapshot.every > 0) {
        std::printf(
            "  %-12s   snapshots: %lld x %.2fms save, %zuKB, restore "
            "%.2fms, resume %s\n",
            "", static_cast<long long>(run.snapshot.count),
            run.snapshot.count > 0 ? run.snapshot.save_total_seconds /
                                         run.snapshot.count * 1e3
                                   : 0.0,
            run.snapshot.last_bytes / 1024, run.snapshot.restore_seconds * 1e3,
            run.snapshot.resume_matches ? "matches" : "DIVERGED");
      }
      runs.push_back(std::move(run));
    }
  }

  // Sharded measurement: the identical sequence through a vertex-
  // partitioned multi-threaded engine — at 1 shard (the degenerate
  // single-worker baseline), at the requested count under every partition
  // plan (cut fraction and resolve cost are per-plan numbers), and once
  // more under the selected plan with the sequential barrier-recompute
  // resolver, which isolates what the asynchronous resolver buys at the
  // final barrier.
  ShardedRunResult sharded_base;
  ShardedRunResult sharded;
  ShardedRunResult sharded_sequential;
  std::vector<ShardedRunResult> plan_runs;
  // Worker-block granularity for the sharded runs. Larger than the
  // single-engine batch regime on purpose: each posted block wakes a
  // worker, and on machines with few hardware threads the wakeup
  // ping-pong between the routing thread and the workers costs more than
  // block-level pipelining wins back.
  const int sharded_batch = 8192;
  if (sharded_shards > 1) {
    auto print_sharded = [&](const ShardedRunResult& r) {
      std::printf(
          "  sharded x%-3d %-8s %-5s %9.0f ops/s  cut=%4.1f%%  "
          "barrier=%6.1fms  |I|=%lld (%.3f of greedy)  %s\n",
          r.shards, r.partition.c_str(), r.async_resolver ? "async" : "seq",
          r.ops_per_sec, r.cut_edge_fraction * 100, r.barrier_seconds * 1e3,
          static_cast<long long>(r.final_solution_size), r.quality_vs_greedy,
          r.verified_independent ? "verified" : "NOT INDEPENDENT");
    };
    sharded_base = RunSharded(base, updates, scratch, 1, sharded_batch,
                              greedy_reference, partition,
                              /*async_resolver=*/true);
    print_sharded(sharded_base);
    for (const PartitionStrategy strategy :
         {PartitionStrategy::kHash, PartitionStrategy::kRange,
          PartitionStrategy::kLocality}) {
      ShardedRunResult run =
          RunSharded(base, updates, scratch, sharded_shards, sharded_batch,
                     greedy_reference, strategy, /*async_resolver=*/true);
      print_sharded(run);
      if (strategy == partition) sharded = run;
      plan_runs.push_back(std::move(run));
    }
    sharded_sequential =
        RunSharded(base, updates, scratch, sharded_shards, sharded_batch,
                   greedy_reference, partition, /*async_resolver=*/false);
    print_sharded(sharded_sequential);
    std::printf("  sharded scaling x%d vs x1: %.2fx (%u hardware threads)\n",
                sharded.shards,
                sharded_base.ops_per_sec > 0
                    ? sharded.ops_per_sec / sharded_base.ops_per_sec
                    : 0,
                std::thread::hardware_concurrency());
    std::printf(
        "  barrier total over %lld barriers: async %.1fms vs sequential "
        "%.1fms (%s plan)\n",
        static_cast<long long>(sharded.barriers), sharded.barrier_seconds * 1e3,
        sharded_sequential.barrier_seconds * 1e3, sharded.partition.c_str());
  }

  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version");
  w.Int(1);
  w.Key("scenario");
  w.String(scenario.name);
  w.Key("description");
  w.String(scenario.description);
  w.Key("scale");
  w.Double(BenchScale());
  // Hardware threads visible to this measurement — shard scaling numbers
  // (and to a degree every throughput number) are only interpretable
  // alongside it.
  w.Key("cpu_count");
  w.Int(static_cast<int64_t>(std::thread::hardware_concurrency()));
  w.Key("graph");
  w.BeginObject();
  w.Key("name");
  w.String(scenario.graph_name);
  w.Key("n");
  w.Int(base.n);
  w.Key("m");
  w.Int(base.NumEdges());
  w.EndObject();
  w.Key("updates");
  w.Int(num_updates);
  w.Key("greedy_reference");
  w.Int(greedy_reference);
  // Memory budget of the streaming ingest (environment-dependent, like the
  // "serving" block: the regression checker pops it).
  if (scenario.ingested) {
    w.Key("ingest");
    w.BeginObject();
    w.Key("vertices");
    w.Int(ingest_report.vertices);
    w.Key("edges");
    w.Int(ingest_report.edges);
    w.Key("dropped_self_loops");
    w.Int(ingest_report.dropped_self_loops);
    w.Key("dropped_duplicates");
    w.Int(ingest_report.dropped_duplicates);
    w.Key("header_reserved");
    w.Bool(ingest_report.header_reserved);
    w.Key("gzip");
    w.Bool(ingest_report.gzip);
    w.Key("load_seconds");
    w.Double(ingest_report.load_seconds);
    w.Key("graph_bytes");
    w.Uint(ingest_report.graph_bytes);
    w.Key("bytes_per_edge");
    w.Double(ingest_report.bytes_per_edge);
    w.Key("peak_rss_bytes");
    w.Uint(ingest_report.peak_rss_bytes);
    w.EndObject();
  }
  // Shape of the sliding-window stream the runs replayed (deterministic,
  // but scale-dependent: the regression checker pops it too).
  if (scenario.temporal) {
    w.Key("temporal");
    w.BeginObject();
    w.Key("ttl_ticks");
    w.Int(temporal_stats.ttl_ticks);
    w.Key("inserts");
    w.Int(temporal_stats.inserts);
    w.Key("expiries");
    w.Int(temporal_stats.expiries);
    w.Key("deletion_share");
    w.Double(temporal_stats.deletion_share);
    w.Key("window_peak_edges");
    w.Uint(temporal_stats.window_peak_edges);
    w.Key("expiry_backlog_peak");
    w.Uint(temporal_stats.expiry_backlog_peak);
    w.Key("storm");
    w.Bool(scenario.window.storm);
    w.EndObject();
  }
  w.Key("runs");
  w.BeginArray();
  for (const RunResult& run : runs) {
    w.BeginObject();
    w.Key("algorithm");
    w.String(run.algorithm);
    w.Key("batch_size");
    w.Int(run.batch_size);
    w.Key("updates");
    w.Int(run.updates);
    w.Key("total_seconds");
    w.Double(run.total_seconds);
    w.Key("ops_per_sec");
    w.Double(run.ops_per_sec);
    w.Key("latency_unit");
    w.String(run.latency_unit);
    w.Key("latency_p50_us");
    w.Double(run.latency_p50_us);
    w.Key("latency_p99_us");
    w.Double(run.latency_p99_us);
    w.Key("peak_memory_bytes");
    w.Uint(run.peak_memory_bytes);
    w.Key("final_solution_size");
    w.Int(run.final_solution_size);
    w.Key("quality_vs_greedy");
    w.Double(run.quality_vs_greedy);
    if (run.snapshot.every > 0) {
      w.Key("snapshot");
      w.BeginObject();
      w.Key("every");
      w.Int(run.snapshot.every);
      w.Key("count");
      w.Int(run.snapshot.count);
      w.Key("save_total_seconds");
      w.Double(run.snapshot.save_total_seconds);
      w.Key("last_bytes");
      w.Uint(run.snapshot.last_bytes);
      w.Key("restore_seconds");
      w.Double(run.snapshot.restore_seconds);
      w.Key("resume_matches");
      w.Bool(run.snapshot.resume_matches);
      w.EndObject();
    }
    w.EndObject();
  }
  w.EndArray();
  if (sharded_shards > 1) {
    auto emit_sharded_run = [&](const ShardedRunResult& r) {
      w.Key("shards");
      w.Int(r.shards);
      w.Key("partition");
      w.String(r.partition);
      w.Key("async_resolver");
      w.Bool(r.async_resolver);
      w.Key("updates");
      w.Int(r.updates);
      w.Key("total_seconds");
      w.Double(r.total_seconds);
      w.Key("ops_per_sec");
      w.Double(r.ops_per_sec);
      w.Key("final_solution_size");
      w.Int(r.final_solution_size);
      w.Key("quality_vs_greedy");
      w.Double(r.quality_vs_greedy);
      w.Key("cut_edge_fraction");
      w.Double(r.cut_edge_fraction);
      w.Key("conflicts");
      w.Int(r.conflicts);
      w.Key("evictions");
      w.Int(r.evictions);
      w.Key("readded");
      w.Int(r.readded);
      w.Key("barriers");
      w.Int(r.barriers);
      w.Key("barrier_seconds");
      w.Double(r.barrier_seconds);
      w.Key("resolve_seconds");
      w.Double(r.resolve_seconds);
      w.Key("transitions_consumed");
      w.Int(r.transitions_consumed);
      w.Key("verified_independent");
      w.Bool(r.verified_independent);
    };
    w.Key("sharded");
    w.BeginObject();
    w.Key("algorithm");
    w.String("DyTwoSwap");
    w.Key("batch_size");
    w.Int(sharded_batch);
    emit_sharded_run(sharded);
    w.Key("scaling_vs_one_shard");
    w.Double(sharded_base.ops_per_sec > 0
                 ? sharded.ops_per_sec / sharded_base.ops_per_sec
                 : 0);
    w.Key("one_shard");
    w.BeginObject();
    emit_sharded_run(sharded_base);
    w.EndObject();
    // Same shard count + plan, sequential barrier-recompute resolver: the
    // barrier_seconds delta against the headline run is the asynchronous
    // resolver's payoff.
    w.Key("sequential_resolver");
    w.BeginObject();
    emit_sharded_run(sharded_sequential);
    w.EndObject();
    // One async run per partition plan at the requested shard count, so
    // cut-edge fraction and resolve cost are comparable across plans.
    w.Key("plans");
    w.BeginArray();
    for (const ShardedRunResult& r : plan_runs) {
      w.BeginObject();
      emit_sharded_run(r);
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();

  if (!WriteFile(out_path, w.Take())) {
    std::fprintf(stderr, "error: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("  wrote %s\n", out_path.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  std::string scenario_name;
  std::string out_path;
  int snapshot_every = 0;
  int sharded_shards = 0;
  PartitionStrategy partition = PartitionStrategy::kHash;
  bool list = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      DYNMIS_CHECK(i + 1 < argc);
      return argv[++i];
    };
    if (arg == "--scenario") {
      scenario_name = next();
    } else if (arg == "--out") {
      out_path = next();
    } else if (arg == "--snapshot-every") {
      snapshot_every = std::atoi(next());
      if (snapshot_every <= 0) {
        std::fprintf(stderr, "--snapshot-every expects a positive count\n");
        return 2;
      }
    } else if (arg == "--shards") {
      sharded_shards = std::atoi(next());
      if (sharded_shards < 2) {
        std::fprintf(stderr,
                     "--shards expects a count >= 2 (1 is measured as the "
                     "scaling baseline automatically)\n");
        return 2;
      }
    } else if (arg == "--partition") {
      const std::string name = next();
      if (!ParsePartitionStrategy(name, &partition)) {
        std::fprintf(stderr,
                     "--partition expects hash, range, or locality (got "
                     "'%s')\n",
                     name.c_str());
        return 2;
      }
    } else if (arg == "--list") {
      list = true;
    } else {
      std::fprintf(stderr,
                   "usage: bench_driver --scenario NAME [--out PATH] "
                   "[--snapshot-every N] [--shards N] "
                   "[--partition hash|range|locality] | --list\n");
      return 2;
    }
  }
  const std::vector<Scenario> scenarios = BuildScenarios();
  if (list || scenario_name.empty()) {
    std::printf("scenarios:\n");
    for (const Scenario& s : scenarios) {
      std::printf("  %-10s %s\n", s.name.c_str(), s.description.c_str());
    }
    return list ? 0 : 2;
  }
  for (const Scenario& s : scenarios) {
    if (s.name == scenario_name) {
      const std::string path =
          out_path.empty() ? "BENCH_" + s.name + ".json" : out_path;
      return RunScenario(s, path, snapshot_every, sharded_shards, partition);
    }
  }
  std::fprintf(stderr, "error: unknown scenario '%s' (try --list)\n",
               scenario_name.c_str());
  return 2;
}

}  // namespace
}  // namespace bench
}  // namespace dynmis

int main(int argc, char** argv) { return dynmis::bench::Main(argc, argv); }
