// Helpers shared by the per-table / per-figure benchmark binaries.

#ifndef DYNMIS_BENCH_BENCH_COMMON_H_
#define DYNMIS_BENCH_BENCH_COMMON_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdlib>
#include <string>
#include <vector>

namespace dynmis {
namespace bench {

// The DYNMIS_BENCH_SCALE environment variable (default 1.0): a fractional
// multiplier on update counts, so the full suite can be made quicker or
// more thorough without recompiling (see bench/EXPERIMENTS.md).
inline double BenchScale() {
  static const double scale = [] {
    const char* env = std::getenv("DYNMIS_BENCH_SCALE");
    if (env == nullptr) return 1.0;
    const double parsed = std::atof(env);
    return parsed > 0 ? parsed : 1.0;
  }();
  return scale;
}

// Scales update counts by DYNMIS_BENCH_SCALE.
inline int ScaledUpdates(int base) {
  const int scaled = static_cast<int>(base * BenchScale());
  return scaled < 1 ? 1 : scaled;
}

// Update-batch sizes relative to a dataset's edge count. The paper uses
// absolute counts (100k / 1M) across graphs spanning 400k..3.4B edges; at
// stand-in scale the comparable regimes are a light batch (~10% of m, like
// Table II's mid-size graphs) and a heavy batch (~50% of m, the "number of
// updates is huge, even equals the number of vertices" scenario).
inline int SmallBatch(int64_t m) {
  return ScaledUpdates(static_cast<int>(m / 10));
}
inline int LargeBatch(int64_t m) {
  return ScaledUpdates(static_cast<int>(m / 2));
}

// Nearest-rank percentile over an ascending vector — the convention every
// bench/serving percentile in the JSON outputs follows. Rounds the rank up
// so small samples report the tail (with 2 samples the p99 is the max, not
// the min).
inline double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0;
  const size_t rank =
      static_cast<size_t>(std::ceil(p * static_cast<double>(sorted.size())));
  return sorted[std::min(sorted.size() - 1, rank == 0 ? 0 : rank - 1)];
}

inline void PrintScaleNote() {
  std::printf(
      "note: synthetic stand-ins at laptop scale; absolute numbers differ "
      "from the paper,\n      the comparison *shape* is the reproduction "
      "target (see bench/EXPERIMENTS.md).\n");
}

}  // namespace bench
}  // namespace dynmis

#endif  // DYNMIS_BENCH_BENCH_COMMON_H_
