// Minimal streaming JSON writer for the benchmark driver's machine-readable
// output (BENCH_<scenario>.json). No external dependencies; the writer
// manages commas and indentation, escapes strings, and refuses to emit
// non-finite doubles (NaN/Inf are not valid JSON and would silently break
// downstream tooling — they are written as null instead).
//
// Usage:
//   JsonWriter w;
//   w.BeginObject();
//   w.Key("ops_per_sec"); w.Double(123456.7);
//   w.Key("runs"); w.BeginArray(); ... w.EndArray();
//   w.EndObject();
//   std::string json = w.Take();

#ifndef DYNMIS_BENCH_JSON_WRITER_H_
#define DYNMIS_BENCH_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace dynmis {
namespace bench {

class JsonWriter {
 public:
  JsonWriter() = default;

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  // Must be called inside an object, immediately before the value.
  void Key(const std::string& key);

  void String(const std::string& value);
  void Int(int64_t value);
  void Uint(uint64_t value);
  // Finite values render with up to 6 significant decimals; NaN/Inf as null.
  void Double(double value);
  void Bool(bool value);
  void Null();

  // Returns the finished document. All containers must be closed.
  std::string Take();

 private:
  enum class Scope { kObject, kArray };

  // Emits the separating comma / newline / indentation due before a value
  // or key at the current position.
  void Prefix(bool is_key);
  void Indent();
  void AppendEscaped(const std::string& value);

  std::string out_;
  std::vector<Scope> stack_;
  // Whether the current container already holds at least one element.
  std::vector<bool> has_elems_;
  // True when a Key() was just written and its value is pending.
  bool value_pending_ = false;
};

// Writes `content` to `path` atomically enough for benchmark use (truncate +
// write). Returns false on I/O failure.
bool WriteFile(const std::string& path, const std::string& content);

}  // namespace bench
}  // namespace dynmis

#endif  // DYNMIS_BENCH_JSON_WRITER_H_
