// Table I: statistics of graphs. Prints, for every dataset stand-in, the
// generated n / m / average degree next to the original graph's published
// statistics, plus the fitted power-law exponent (the paper's premise that
// these graphs are power-law bounded with beta > 2).

#include <cstdio>

#include "bench/bench_common.h"
#include "src/graph/datasets.h"
#include "src/graph/degree_stats.h"
#include "src/util/table.h"

namespace dynmis {
namespace {

void AddRows(TablePrinter* table, const std::vector<DatasetSpec>& specs) {
  for (const DatasetSpec& spec : specs) {
    const EdgeListGraph g = GenerateDataset(spec);
    const DegreeStats stats = ComputeDegreeStats(g.ToStatic());
    const double beta = EstimatePowerLawExponent(stats);
    table->AddRow({spec.name, FormatCount(g.n), FormatCount(g.NumEdges()),
                   FormatDouble(g.AverageDegree(), 2), FormatDouble(beta, 2),
                   FormatCount(spec.paper_n), FormatCount(spec.paper_m),
                   FormatDouble(spec.paper_avg_degree, 2)});
  }
}

void Run() {
  std::printf("=== Table I: statistics of graphs ===\n");
  bench::PrintScaleNote();
  TablePrinter table({"Graph", "n", "m", "avg-deg", "beta-fit", "paper-n",
                      "paper-m", "paper-avg"});
  AddRows(&table, EasyDatasets());
  AddRows(&table, HardDatasets());
  table.Print(stdout);
}

}  // namespace
}  // namespace dynmis

int main() {
  dynmis::Run();
  return 0;
}
