// Fig 8: scalability in the number of updates on hollywood and
// soc-LiveJournal: response time (a, c) and gap & accuracy (b, d) as
// #updates sweeps from the small batch to the large batch.

#include <cstdio>

#include "bench/bench_common.h"
#include "src/graph/datasets.h"
#include "src/harness/experiment.h"
#include "src/harness/report.h"
#include "src/util/table.h"

namespace dynmis {
namespace {

const std::vector<MaintainerConfig> kAlgos = {
    "DGOneDIS", "DGTwoDIS", "DyARW", "DyOneSwap", "DyTwoSwap"};

void RunGraph(const std::string& name) {
  const DatasetSpec* spec = FindDataset(name);
  const EdgeListGraph base = GenerateDataset(*spec);
  std::printf("\n--- %s ---\n", name.c_str());
  std::vector<std::string> headers = {"#updates"};
  for (const MaintainerConfig& algo : kAlgos) headers.push_back(algo.algorithm);
  TablePrinter time_table(headers);
  TablePrinter gap_table(headers);
  TablePrinter acc_table(headers);
  for (const int base_updates : {5000, 10000, 20000, 35000, 50000}) {
    const int updates = bench::ScaledUpdates(base_updates);
    ExperimentConfig config;
    config.initial = InitialSolution::kArw;
    config.arw_iterations = 200;
    config.num_updates = updates;
    config.stream.seed = spec->seed * 11 + static_cast<uint64_t>(base_updates);
    config.stream.bias = EndpointBias::kDegreeProportional;
    config.compute_final_alpha = true;
    config.compute_final_best = true;  // Fallback reference (marked "~").
    config.arw_iterations = 1000;
    const ExperimentResult result = RunExperiment(base, kAlgos, config);
    const bool have_alpha = result.final_alpha >= 0;
    const std::string upd_label =
        FormatCount(updates) + (have_alpha ? "" : "~");
    std::vector<std::string> time_row = {upd_label};
    std::vector<std::string> gap_row = {upd_label};
    std::vector<std::string> acc_row = {upd_label};
    const int64_t alpha = have_alpha ? result.final_alpha : result.final_best;
    for (const MaintainerConfig& algo : kAlgos) {
      const AlgoRunResult& run = FindRun(result, algo.algorithm);
      time_row.push_back(TimeCell(run));
      gap_row.push_back(GapCell(run, alpha));
      acc_row.push_back(AccuracyCell(run, alpha));
    }
    time_table.AddRow(std::move(time_row));
    gap_table.AddRow(std::move(gap_row));
    acc_table.AddRow(std::move(acc_row));
  }
  std::printf("response time:\n");
  time_table.Print(stdout);
  std::printf("\ngap to alpha:\n");
  gap_table.Print(stdout);
  std::printf("\naccuracy:\n");
  acc_table.Print(stdout);
}

void Run() {
  std::printf("=== Fig 8: scalability in #updates ===\n");
  bench::PrintScaleNote();
  RunGraph("hollywood");
  RunGraph("soc-LiveJournal");
  std::printf(
      "\nExpected shape (paper): time grows ~linearly in #updates for all; "
      "every algorithm's\ngap grows with #updates but Dy* degrade slower "
      "than DG*.\n");
}

}  // namespace
}  // namespace dynmis

int main() {
  dynmis::Run();
  return 0;
}
